// Autograd tests: engine mechanics (accumulation, diamond graphs, leaves)
// plus finite-difference gradient checks for every differentiable op.
#include <gtest/gtest.h>

#include "autograd/functions.h"
#include "autograd/gradcheck.h"
#include "autograd/variable.h"
#include "tensor/ops.h"

namespace salient {
namespace {

namespace ag = autograd;

Variable leaf(std::vector<std::int64_t> shape, std::uint64_t seed,
              double lo = -1, double hi = 1) {
  return Variable(Tensor::uniform(std::move(shape), seed, lo, hi, DType::kF64),
                  /*requires_grad=*/true);
}

TEST(Engine, LeafAccumulatesSeed) {
  Variable x(Tensor::ones({3}, DType::kF64), true);
  x.backward(Tensor::full({3}, 2.0, DType::kF64));
  EXPECT_TRUE(allclose(x.grad(), Tensor::full({3}, 2.0, DType::kF64)));
  // second backward accumulates
  x.backward(Tensor::full({3}, 1.0, DType::kF64));
  EXPECT_TRUE(allclose(x.grad(), Tensor::full({3}, 3.0, DType::kF64)));
  x.zero_grad();
  EXPECT_FALSE(x.grad().defined());
}

TEST(Engine, DiamondGraphSumsBothPaths) {
  // y = x*x + x*x : dy/dx = 4x
  Variable x = leaf({4}, 3);
  Variable a = ag::mul(x, x);
  Variable b = ag::mul(x, x);
  Variable y = ag::add(a, b);
  y.backward(Tensor::ones({4}, DType::kF64));
  Tensor expected = ops::scale(x.data(), 4.0);
  EXPECT_TRUE(allclose(x.grad(), expected, 1e-9, 1e-9));
}

TEST(Engine, ReusedVariableAsBothInputs) {
  // y = x * x (same variable twice in one node): dy/dx = 2x
  Variable x = leaf({5}, 4);
  Variable y = ag::mul(x, x);
  y.backward(Tensor::ones({5}, DType::kF64));
  EXPECT_TRUE(allclose(x.grad(), ops::scale(x.data(), 2.0), 1e-9, 1e-9));
}

TEST(Engine, NoGradInputsProduceConstant) {
  Variable x(Tensor::ones({2}, DType::kF64), false);
  Variable y = ag::scale(x, 3.0);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_EQ(y.grad_fn(), nullptr);
}

TEST(Engine, ScalarImplicitSeed) {
  Variable x = leaf({3, 2}, 5);
  Variable loss = ag::nll_loss(ag::log_softmax(x),
                               Tensor::from_vector<std::int64_t>({0, 1, 0},
                                                                 {3}));
  loss.backward();  // implicit seed of 1
  EXPECT_TRUE(x.grad().defined());
  Variable y = ag::add(x, x);
  EXPECT_THROW(y.backward(), std::runtime_error);  // non-scalar
}

// --- gradchecks -------------------------------------------------------------

TEST(Gradcheck, AddSubMulScale) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable s = ag::add(in[0], in[1]);
    s = ag::sub(s, ag::scale(in[1], 0.5));
    s = ag::mul(s, in[0]);
    return ag::nll_loss(ag::log_softmax(s),
                        Tensor::from_vector<std::int64_t>({1, 0}, {2}));
  };
  auto r = ag::gradcheck(fn, {leaf({2, 3}, 10), leaf({2, 3}, 11)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(Gradcheck, MatmulAllTransposes) {
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      auto fn = [ta, tb](const std::vector<Variable>& in) {
        Variable y = ag::matmul(in[0], in[1], ta, tb);
        return ag::nll_loss(ag::log_softmax(y),
                            Tensor::from_vector<std::int64_t>({0, 2, 1},
                                                              {3}));
      };
      Variable a = leaf(ta ? std::vector<std::int64_t>{4, 3}
                           : std::vector<std::int64_t>{3, 4},
                        20 + ta);
      Variable b = leaf(tb ? std::vector<std::int64_t>{5, 4}
                           : std::vector<std::int64_t>{4, 5},
                        22 + tb);
      auto r = ag::gradcheck(fn, {a, b});
      EXPECT_TRUE(r.ok) << "ta=" << ta << " tb=" << tb << ": " << r.message;
    }
  }
}

TEST(Gradcheck, LinearWithBias) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable y = ag::linear(in[0], in[1], in[2]);
    return ag::nll_loss(ag::log_softmax(y),
                        Tensor::from_vector<std::int64_t>({1, 3}, {2}));
  };
  auto r = ag::gradcheck(fn, {leaf({2, 3}, 30), leaf({4, 3}, 31),
                              leaf({4}, 32)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(Gradcheck, ReluAndLeakyRelu) {
  // Offset inputs away from 0 so finite differences don't cross the kink.
  auto fn = [](const std::vector<Variable>& in) {
    Variable y = ag::relu(in[0]);
    y = ag::leaky_relu(y, 0.2);
    return ag::nll_loss(ag::log_softmax(y),
                        Tensor::from_vector<std::int64_t>({0, 1}, {2}));
  };
  Variable x(Tensor::from_vector<double>(
                 {0.5, -0.7, 1.2, -0.3, 0.9, 2.0}, {2, 3}),
             true);
  auto r = ag::gradcheck(fn, {x});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(Gradcheck, LogSoftmaxNll) {
  auto fn = [](const std::vector<Variable>& in) {
    return ag::nll_loss(ag::log_softmax(in[0]),
                        Tensor::from_vector<std::int64_t>({2, 0, 1, 2}, {4}));
  };
  auto r = ag::gradcheck(fn, {leaf({4, 3}, 40, -2, 2)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(Gradcheck, NarrowRowsAndConcat) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable top = ag::narrow_rows(in[0], 0, 2);
    Variable both = ag::concat_cols({top, in[1]});
    return ag::nll_loss(ag::log_softmax(both),
                        Tensor::from_vector<std::int64_t>({0, 3}, {2}));
  };
  auto r = ag::gradcheck(fn, {leaf({4, 2}, 50), leaf({2, 3}, 51)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(Gradcheck, SpmmMeanAndSum) {
  auto indptr = std::make_shared<const std::vector<std::int64_t>>(
      std::vector<std::int64_t>{0, 2, 3, 3});
  auto indices = std::make_shared<const std::vector<std::int64_t>>(
      std::vector<std::int64_t>{0, 3, 1});
  for (const bool mean : {true, false}) {
    auto fn = [&, mean](const std::vector<Variable>& in) {
      Variable y = mean ? ag::spmm_mean(indptr, indices, in[0], 3)
                        : ag::spmm_sum(indptr, indices, in[0], 3);
      return ag::nll_loss(ag::log_softmax(y),
                          Tensor::from_vector<std::int64_t>({0, 1, 1}, {3}));
    };
    auto r = ag::gradcheck(fn, {leaf({4, 2}, 60 + mean)});
    EXPECT_TRUE(r.ok) << "mean=" << mean << ": " << r.message;
  }
}

TEST(Gradcheck, BatchNormTrainingAndEval) {
  for (const bool training : {true, false}) {
    Tensor running_mean = Tensor::zeros({3}, DType::kF64);
    Tensor running_var = Tensor::ones({3}, DType::kF64);
    auto fn = [&](const std::vector<Variable>& in) {
      Tensor rm = running_mean.clone();  // keep stats fixed across calls
      Tensor rv = running_var.clone();
      Variable y = ag::batch_norm(in[0], in[1], in[2], rm, rv, training);
      return ag::nll_loss(ag::log_softmax(y),
                          Tensor::from_vector<std::int64_t>({0, 1, 2, 0},
                                                            {4}));
    };
    auto r = ag::gradcheck(fn, {leaf({4, 3}, 70, -2, 2), leaf({3}, 71, 0.5, 1.5),
                                leaf({3}, 72)},
                           1e-5, 1e-5);
    EXPECT_TRUE(r.ok) << "training=" << training << ": " << r.message;
  }
}

TEST(BatchNorm, RunningStatsUpdate) {
  Tensor rm = Tensor::zeros({2}, DType::kF64);
  Tensor rv = Tensor::ones({2}, DType::kF64);
  Variable x(Tensor::from_vector<double>({1, 10, 3, 20}, {2, 2}), false);
  Variable gamma(Tensor::ones({2}, DType::kF64), false);
  Variable beta(Tensor::zeros({2}, DType::kF64), false);
  ag::batch_norm(x, gamma, beta, rm, rv, /*training=*/true, 0.1);
  // batch mean = (2, 15); running = 0.9*0 + 0.1*mean
  EXPECT_NEAR(rm.at<double>(0), 0.2, 1e-12);
  EXPECT_NEAR(rm.at<double>(1), 1.5, 1e-12);
  // batch var (biased) = (1, 25); unbiased (m=2) doubles it
  EXPECT_NEAR(rv.at<double>(0), 0.9 + 0.1 * 2.0, 1e-12);
  EXPECT_NEAR(rv.at<double>(1), 0.9 + 0.1 * 50.0, 1e-12);
}

TEST(Dropout, EvalModeIsIdentityAndTrainScales) {
  Variable x(Tensor::ones({1000}, DType::kF64), true);
  Variable eval_y = ag::dropout(x, 0.5, /*training=*/false, 1);
  EXPECT_TRUE(allclose(eval_y.data(), x.data()));
  Variable train_y = ag::dropout(x, 0.5, /*training=*/true, 1);
  const double mean = ops::mean_all(train_y.data());
  EXPECT_NEAR(mean, 1.0, 0.1);  // inverted dropout preserves expectation
}

TEST(Gradcheck, DropoutMaskChainRule) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable y = ag::dropout(in[0], 0.4, true, /*seed=*/99);
    return ag::nll_loss(ag::log_softmax(y),
                        Tensor::from_vector<std::int64_t>({0, 1}, {2}));
  };
  auto r = ag::gradcheck(fn, {leaf({2, 4}, 80)});
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace salient
