// Cache-policy engine tests (src/prep/cache_policy.h, docs/CACHING.md):
// the FrequencyTable counting structure, per-policy behavior through the
// shared CachePolicy interface (parity of plan classification, missing-row
// slicing, and device assembly across static and dynamic policies), LRU
// admission/eviction/recency semantics, presample determinism across warmup
// pool sizes, and auto-selection on a skewed access stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "device/device_sim.h"
#include "graph/dataset.h"
#include "obs/metrics.h"
#include "prep/cache_policy.h"
#include "prep/feature_cache.h"
#include "prep/frequency_table.h"
#include "prep/slicing.h"
#include "sampling/fast_sampler.h"
#include "util/thread_pool.h"

namespace salient {
namespace {

Dataset& policy_dataset() {
  static Dataset ds = [] {
    DatasetConfig c;
    c.name = "cache-policy-test";
    c.num_nodes = 3000;
    c.feature_dim = 16;
    c.num_classes = 5;
    c.avg_degree = 9;
    c.seed = 123;
    return generate_dataset(c);
  }();
  return ds;
}

/// A config whose warmup sampling matches the test workload below.
CachePolicyConfig policy_config(CachePolicyKind kind) {
  CachePolicyConfig c;
  c.kind = kind;
  c.fanouts = {6, 4};
  c.batch_size = 96;
  c.seed = 5;
  return c;
}

Mfg policy_test_mfg(std::uint64_t seed = 9) {
  const Dataset& ds = policy_dataset();
  std::vector<NodeId> batch;
  for (NodeId v = 0; v < 96; ++v) {
    batch.push_back((v * 37) % ds.graph.num_nodes());
  }
  FastSampler sampler(ds.graph, {6, 4});
  return sampler.sample(batch, seed);
}

// --- FrequencyTable ----------------------------------------------------------

TEST(FrequencyTable, CountsAndDistinct) {
  FrequencyTable t(100);
  EXPECT_EQ(t.distinct(), 0);
  EXPECT_EQ(t.count(7), 0);
  t.add(7);
  t.add(7, 3);
  t.add(42);
  EXPECT_EQ(t.count(7), 4);
  EXPECT_EQ(t.count(42), 1);
  EXPECT_EQ(t.count(8), 0);
  EXPECT_EQ(t.distinct(), 2);

  auto items = t.items();
  std::sort(items.begin(), items.end());
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], (std::pair<std::int64_t, std::int64_t>{7, 4}));
  EXPECT_EQ(items[1], (std::pair<std::int64_t, std::int64_t>{42, 1}));
}

TEST(FrequencyTable, ThrowsWhenFull) {
  FrequencyTable t(4);  // slot array: next pow2 >= 8
  // Insert distinct keys until the structural capacity is exhausted; the
  // table must throw rather than silently drop counts.
  EXPECT_THROW(
      {
        for (std::int64_t k = 0; k < 1000; ++k) t.add(k);
      },
      std::length_error);
}

TEST(FrequencyTable, ParallelCountsEqualSerial) {
  // The map (key -> count) must be independent of thread interleaving:
  // counts are commutative atomic adds, insertion is CAS-claimed.
  const std::int64_t n = 500;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 20000; ++i) {
    keys.push_back((i * i + 13) % n);  // collisions galore
  }
  FrequencyTable serial(n);
  for (const auto k : keys) serial.add(k);

  FrequencyTable parallel(n);
  ThreadPool pool(4);
  pool.parallel_for(0, static_cast<std::int64_t>(keys.size()),
                    [&](std::int64_t b, std::int64_t e) {
                      for (std::int64_t i = b; i < e; ++i) {
                        parallel.add(keys[static_cast<std::size_t>(i)]);
                      }
                    });

  EXPECT_EQ(serial.distinct(), parallel.distinct());
  for (std::int64_t k = 0; k < n; ++k) {
    ASSERT_EQ(serial.count(k), parallel.count(k)) << "key " << k;
  }
}

// --- parse/name --------------------------------------------------------------

TEST(CachePolicy, ParseAndNameRoundTrip) {
  for (const auto kind :
       {CachePolicyKind::kLru, CachePolicyKind::kDegree,
        CachePolicyKind::kPresample, CachePolicyKind::kAuto}) {
    EXPECT_EQ(parse_cache_policy(cache_policy_name(kind)), kind);
  }
  EXPECT_THROW(parse_cache_policy("fifo"), std::invalid_argument);
  EXPECT_THROW(parse_cache_policy(""), std::invalid_argument);
}

TEST(CachePolicy, FactoryValidatesConfig) {
  CachePolicyConfig bad = policy_config(CachePolicyKind::kPresample);
  bad.presample_epochs = 0;
  EXPECT_THROW(make_cache_policy(bad), std::invalid_argument);
  bad = policy_config(CachePolicyKind::kPresample);
  bad.batch_size = 0;
  EXPECT_THROW(make_cache_policy(bad), std::invalid_argument);
}

// --- interface contract ------------------------------------------------------

class OverPinningPolicy final : public CachePolicy {
 public:
  const char* name() const override { return "overpin"; }
  std::vector<NodeId> pin(const Dataset&, std::int64_t capacity) override {
    std::vector<NodeId> out;
    for (NodeId v = 0; v <= capacity; ++v) out.push_back(v);  // one too many
    return out;
  }
};

TEST(CachePolicy, CacheRejectsOverPinning) {
  const Dataset& ds = policy_dataset();
  EXPECT_THROW(FeatureCache(ds, 10, std::make_unique<OverPinningPolicy>()),
               std::logic_error);
  EXPECT_THROW(FeatureCache(ds, 10, nullptr), std::invalid_argument);
}

// Every policy must satisfy the same plan contract: classification covers
// all input nodes, misses are densely numbered in input order, hit sources
// resolve to the right feature rows, and slice_missing_rows + device
// assembly reconstruct the exact uncached feature matrix.
class PolicyParity : public ::testing::TestWithParam<CachePolicyKind> {};

TEST_P(PolicyParity, PlanClassifiesEveryInputNode) {
  const Dataset& ds = policy_dataset();
  const FeatureCache cache(ds, 600, policy_config(GetParam()));
  const Mfg mfg = policy_test_mfg();
  const CachePlan plan = plan_cached_batch(mfg, cache);
  const auto n = static_cast<std::int64_t>(mfg.n_ids.size());
  ASSERT_EQ(static_cast<std::int64_t>(plan.from_cache.size()), n);
  ASSERT_EQ(static_cast<std::int64_t>(plan.source.size()), n);
  std::int64_t missing_seen = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (plan.from_cache[idx]) {
      EXPECT_GE(plan.source[idx], 0);
    } else {
      // Missing rows are numbered densely in input order.
      EXPECT_EQ(plan.source[idx], missing_seen++);
    }
  }
  EXPECT_EQ(plan.num_missing, missing_seen);
  if (cache.dynamic_policy()) {
    ASSERT_TRUE(plan.hit_rows.defined());
    EXPECT_EQ(plan.hit_rows.size(0), n - plan.num_missing);
    EXPECT_EQ(plan.hit_rows.size(1), ds.feature_dim);
  } else {
    EXPECT_FALSE(plan.hit_rows.defined());
  }
}

TEST_P(PolicyParity, SliceMissingRowsMatchesHostStore) {
  const Dataset& ds = policy_dataset();
  const FeatureCache cache(ds, 600, policy_config(GetParam()));
  const Mfg mfg = policy_test_mfg();
  const CachePlan plan = plan_cached_batch(mfg, cache);
  Tensor out({plan.num_missing, ds.feature_dim}, DType::kF16);
  slice_missing_rows(ds, mfg, plan, out);
  for (std::size_t i = 0; i < mfg.n_ids.size(); ++i) {
    if (plan.from_cache[i]) continue;
    const std::int64_t row = plan.source[i];
    for (std::int64_t j = 0; j < ds.feature_dim; ++j) {
      ASSERT_EQ(out.at<Half>(row, j).bits,
                ds.features.at<Half>(mfg.n_ids[i], j).bits);
    }
  }
}

TEST_P(PolicyParity, CachedTransferMatchesUncachedBitExactly) {
  const Dataset& ds = policy_dataset();
  // Capacity |V|: static policies pin everything they want, LRU never
  // evicts — so the mixed hit/miss pattern below is fully scripted.
  const FeatureCache cache(ds, ds.graph.num_nodes(),
                           policy_config(GetParam()));
  FastSampler sampler(ds.graph, {6, 4});
  std::vector<NodeId> nodes(ds.train_idx.begin(), ds.train_idx.begin() + 64);

  PreparedBatch full;
  full.index = 0;
  full.mfg = sampler.sample(nodes, 77);
  full.x = Tensor({full.mfg.num_input_nodes(), ds.feature_dim}, DType::kF16,
                  true);
  slice_rows_serial(ds.features, full.mfg.n_ids, full.x);
  full.y = Tensor({full.mfg.batch_size}, DType::kI64, true);
  slice_labels(ds.labels,
               {full.mfg.n_ids.data(),
                static_cast<std::size_t>(full.mfg.batch_size)},
               full.y);

  // Warm a dynamic cache with *half* the input set, so the parity plan mixes
  // hits (the warmed half, served from the hit-row snapshot) with misses
  // (the rest, transferred + up-converted). Harmless for static policies.
  Mfg warm;
  warm.n_ids.assign(full.mfg.n_ids.begin(),
                    full.mfg.n_ids.begin() +
                        static_cast<std::ptrdiff_t>(full.mfg.n_ids.size() / 2));
  (void)plan_cached_batch(warm, cache);

  CachePlan plan = plan_cached_batch(full.mfg, cache);
  EXPECT_GT(plan.hit_rate(), 0.0);
  if (cache.dynamic_policy()) {
    EXPECT_GT(plan.num_missing, 0);  // genuinely mixed for LRU
  }
  PreparedBatch cached;
  cached.index = 0;
  cached.mfg = full.mfg;
  cached.x = Tensor({plan.num_missing, ds.feature_dim}, DType::kF16, true);
  slice_missing_rows(ds, full.mfg, plan, cached.x);
  cached.y = full.y;

  DeviceSim dev;
  DeviceBatch a = dev.transfer_batch(full, true, nullptr);
  DeviceBatch b = dev.transfer_batch_cached(cached, plan, cache, true,
                                            nullptr);
  EXPECT_TRUE(allclose(a.x_f32, b.x_f32, 0.0, 0.0));  // bit-identical
  EXPECT_TRUE(allclose(a.y, b.y));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyParity,
    ::testing::Values(CachePolicyKind::kDegree, CachePolicyKind::kPresample,
                      CachePolicyKind::kLru),
    [](const ::testing::TestParamInfo<CachePolicyKind>& info) {
      return std::string(cache_policy_name(info.param));
    });

// --- degree ------------------------------------------------------------------

TEST(DegreePolicy, PinsHighestDegreeNodes) {
  const Dataset& ds = policy_dataset();
  const FeatureCache cache(ds, 50, policy_config(CachePolicyKind::kDegree));
  EXPECT_STREQ(cache.policy_name(), "degree");
  EXPECT_FALSE(cache.dynamic_policy());
  const auto resident = cache.resident_nodes();
  ASSERT_EQ(resident.size(), 50u);
  // Every resident node's degree >= every non-resident node's degree.
  std::set<NodeId> in(resident.begin(), resident.end());
  std::int64_t min_resident = std::numeric_limits<std::int64_t>::max();
  for (const NodeId v : resident) {
    min_resident = std::min(min_resident, ds.graph.degree(v));
  }
  for (NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    if (!in.count(v)) EXPECT_LE(ds.graph.degree(v), min_resident);
  }
}

// --- lru ---------------------------------------------------------------------

TEST(LruPolicy, ColdStartThenRepeatBatchAllHits) {
  const Dataset& ds = policy_dataset();
  const FeatureCache cache(ds, ds.graph.num_nodes(),
                           policy_config(CachePolicyKind::kLru));
  EXPECT_TRUE(cache.dynamic_policy());
  EXPECT_EQ(cache.resident_nodes().size(), 0u);  // cold
  const Mfg mfg = policy_test_mfg();
  const CachePlan first = plan_cached_batch(mfg, cache);
  EXPECT_DOUBLE_EQ(first.hit_rate(), 0.0);  // everything misses, all admitted
  const CachePlan second = plan_cached_batch(mfg, cache);
  EXPECT_DOUBLE_EQ(second.hit_rate(), 1.0);  // repeat batch: all hits
  // The hit-row snapshot carries the actual feature data.
  ASSERT_TRUE(second.hit_rows.defined());
  const Tensor want = [&] {
    Tensor h({static_cast<std::int64_t>(mfg.n_ids.size()), ds.feature_dim},
             DType::kF16);
    slice_rows_serial(ds.features, mfg.n_ids, h);
    return h.to(DType::kF32);
  }();
  for (std::size_t i = 0; i < mfg.n_ids.size(); ++i) {
    const std::int64_t row = second.source[i];
    for (std::int64_t j = 0; j < ds.feature_dim; ++j) {
      ASSERT_EQ(second.hit_rows.at<float>(row, j),
                want.at<float>(static_cast<std::int64_t>(i), j));
    }
  }
}

TEST(LruPolicy, EvictsLeastRecentlyUsed) {
  const Dataset& ds = policy_dataset();
  const FeatureCache cache(ds, 2, policy_config(CachePolicyKind::kLru));
  auto plan_nodes = [&](std::vector<NodeId> nodes) {
    Mfg mfg;
    mfg.n_ids = std::move(nodes);
    return plan_cached_batch(mfg, cache);
  };
  // Fill: {10, 20}; recency order (MRU first): 20, 10.
  plan_nodes({10, 20});
  // 30 misses and evicts 10 (the LRU); 20 stays.
  plan_nodes({30});
  auto resident = cache.resident_nodes();
  EXPECT_EQ(resident, (std::vector<NodeId>{20, 30}));
  // Touch 20, then admit 40: the LRU is now 30.
  plan_nodes({20});
  plan_nodes({40});
  resident = cache.resident_nodes();
  EXPECT_EQ(resident, (std::vector<NodeId>{20, 40}));
  // slot_of is coherent with the plans.
  EXPECT_GE(cache.slot_of(20), 0);
  EXPECT_EQ(cache.slot_of(30), -1);
}

// --- presample ---------------------------------------------------------------

TEST(PresamplePolicy, DeterministicAcrossWarmupPoolSizes) {
  const Dataset& ds = policy_dataset();
  CachePolicyConfig serial = policy_config(CachePolicyKind::kPresample);
  serial.presample_workers = 0;
  CachePolicyConfig pooled = serial;
  pooled.presample_workers = 3;
  const FeatureCache a(ds, 300, serial);
  const FeatureCache b(ds, 300, pooled);
  EXPECT_EQ(a.resident_nodes(), b.resident_nodes());
  EXPECT_STREQ(a.policy_name(), "presample");
  EXPECT_FALSE(a.dynamic_policy());
}

TEST(PresamplePolicy, BeatsUniformPlacementOnSampledStream) {
  // Pinning by observed access frequency must beat hit rate proportional to
  // capacity (what uniform-random placement achieves in expectation).
  const Dataset& ds = policy_dataset();
  const std::int64_t capacity = ds.graph.num_nodes() / 10;
  const FeatureCache cache(ds, capacity,
                           policy_config(CachePolicyKind::kPresample));
  double hits = 0, total = 0;
  for (std::uint64_t s = 100; s < 108; ++s) {
    const CachePlan plan = plan_cached_batch(policy_test_mfg(s), cache);
    total += static_cast<double>(plan.from_cache.size());
    hits += static_cast<double>(plan.from_cache.size()) -
            static_cast<double>(plan.num_missing);
  }
  const double uniform_rate = static_cast<double>(capacity) /
                              static_cast<double>(ds.graph.num_nodes());
  EXPECT_GT(hits / total, 2.0 * uniform_rate);
}

// --- auto --------------------------------------------------------------------

TEST(AutoPolicy, SelectsStaticPolicyOnSkewedStreamAndRecordsGauges) {
  const Dataset& ds = policy_dataset();
  auto& reg = obs::Registry::global();
  const FeatureCache cache(ds, 300, policy_config(CachePolicyKind::kAuto));
  // On a neighborhood-sampled power-law stream the frequency-informed static
  // policies dominate LRU, so auto must not delegate to it.
  EXPECT_STRNE(cache.policy_name(), "auto(lru)");
  EXPECT_STRNE(cache.policy_name(), "auto");  // selection happened
  EXPECT_FALSE(cache.dynamic_policy());
  // The probe hit rates are published for the metrics dump.
  for (const char* name : {"lru", "degree", "presample"}) {
    const double rate =
        reg.gauge(std::string("prep.cache.auto.hit_rate.") + name).value();
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  const double lru =
      reg.gauge("prep.cache.auto.hit_rate.lru").value();
  const double best =
      std::max(reg.gauge("prep.cache.auto.hit_rate.degree").value(),
               reg.gauge("prep.cache.auto.hit_rate.presample").value());
  EXPECT_GT(best, lru);
}

}  // namespace
}  // namespace salient
