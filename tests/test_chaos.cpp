// Chaos suite: seeded fault-injection runs of the training and serving
// pipelines (src/fault/, docs/TESTING.md).
//
// What is asserted, per the hardening contract:
//   * no deadlock — every run finishes under a fault::Watchdog (and ctest
//     enforces a whole-binary TIMEOUT as the backstop);
//   * no batch loss or duplication — every mini-batch index is delivered
//     exactly once however many workers die, queues wedge, or lock-free
//     pops spuriously miss;
//   * determinism — with a fixed fault schedule the delivered batches are
//     bitwise-identical to a fault-free run (recovery is lossless, so
//     results are invariant to where faults land);
//   * graceful degradation — serving under randomized faults resolves every
//     request (kOk / kShed / kFailed / kInvalid), never wedges, and drains
//     cleanly at shutdown.
//
// Tests that need injection sites compiled in skip themselves unless the
// build sets SALIENT_FAILPOINTS=ON (fault::kFailpointsCompiledIn); the
// framework, pool-backpressure, stream-containment, and poison-request
// tests run in every build. Reproduce a failure by re-arming the schedule
// printed in the test body — triggers depend only on per-failpoint hit
// counters and seeds, never on wall time (see docs/TESTING.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "device/device_sim.h"
#include "device/dma.h"
#include "dist/cluster/cluster_trainer.h"
#include "device/stream.h"
#include "fault/failpoint.h"
#include "fault/watchdog.h"
#include "graph/dataset.h"
#include "nn/models.h"
#include "obs/metrics.h"
#include "prep/cache_policy.h"
#include "prep/feature_cache.h"
#include "prep/salient_loader.h"
#include "serve/server.h"
#include "util/blocking_queue.h"
#include "util/mpmc_queue.h"

namespace salient {
namespace {

using fault::Registry;
using fault::ScopedDisarm;
using fault::TriggerSpec;
using fault::Watchdog;

Dataset& chaos_dataset() {
  static Dataset ds = [] {
    DatasetConfig c;
    c.name = "chaos-test";
    c.num_nodes = 2500;
    c.feature_dim = 12;
    c.num_classes = 4;
    c.avg_degree = 7;
    c.seed = 91;
    return generate_dataset(c);
  }();
  return ds;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Content hash of a prepared batch: MFG structure + sliced features/labels.
std::uint64_t hash_batch(const PreparedBatch& b) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, b.mfg.n_ids.data(), b.mfg.n_ids.size() * sizeof(NodeId));
  for (const auto& level : b.mfg.levels) {
    h = fnv1a(h, level.indptr->data(),
              level.indptr->size() * sizeof(std::int64_t));
    h = fnv1a(h, level.indices->data(),
              level.indices->size() * sizeof(std::int64_t));
  }
  h = fnv1a(h, b.x.raw(), b.x.nbytes());
  h = fnv1a(h, b.y.raw(), b.y.nbytes());
  return h;
}

LoaderConfig chaos_loader_config() {
  LoaderConfig cfg;
  cfg.batch_size = 128;
  cfg.fanouts = {6, 4};
  cfg.num_workers = 3;
  cfg.queue_capacity = 3;
  cfg.seed = 7;
  return cfg;
}

struct EpochResult {
  std::map<std::int64_t, std::uint64_t> hash_by_index;
  std::map<std::int64_t, int> deliveries;
  std::int64_t worker_deaths = 0;
};

/// Drive one full epoch through SalientLoader, hashing every delivered
/// batch. Train-split = all nodes of the chaos dataset.
EpochResult run_epoch(const LoaderConfig& cfg) {
  const Dataset& ds = chaos_dataset();
  std::vector<NodeId> nodes(static_cast<std::size_t>(ds.graph.num_nodes()));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i] = static_cast<NodeId>(i);
  }
  EpochResult r;
  SalientLoader loader(ds, nodes, cfg);
  while (auto batch = loader.next()) {
    r.hash_by_index[batch->index] = hash_batch(*batch);
    ++r.deliveries[batch->index];
    loader.recycle(std::move(*batch));
  }
  r.worker_deaths = loader.worker_deaths();
  return r;
}

void expect_exactly_once(const EpochResult& r, std::int64_t num_batches) {
  EXPECT_EQ(static_cast<std::int64_t>(r.deliveries.size()), num_batches);
  for (const auto& [index, count] : r.deliveries) {
    EXPECT_EQ(count, 1) << "batch " << index << " delivered " << count
                        << " times";
    EXPECT_GE(index, 0);
    EXPECT_LT(index, num_batches);
  }
}

// --- failpoint framework (runs in every build) ------------------------------

TEST(Failpoints, TriggersAreDeterministicAndCounted) {
  ScopedDisarm guard;
  auto& fp = Registry::global().failpoint("test.trigger");

  fp.arm(TriggerSpec::every(3));
  std::vector<bool> pattern;
  for (int i = 0; i < 9; ++i) pattern.push_back(fp.should_fire());
  EXPECT_EQ(pattern, (std::vector<bool>{false, false, true, false, false,
                                        true, false, false, true}));
  EXPECT_EQ(fp.hits(), 9u);
  EXPECT_EQ(fp.fires(), 3u);

  fp.arm(TriggerSpec::nth(2));
  int fires = 0;
  for (int i = 0; i < 10; ++i) fires += fp.should_fire() ? 1 : 0;
  EXPECT_EQ(fires, 1);

  // Seeded probabilistic schedules replay exactly after re-arming.
  fp.arm(TriggerSpec::prob(0.3, 42));
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) first.push_back(fp.should_fire());
  fp.arm(TriggerSpec::prob(0.3, 42));
  std::vector<bool> second;
  for (int i = 0; i < 200; ++i) second.push_back(fp.should_fire());
  EXPECT_EQ(first, second);
  const auto fired = static_cast<int>(fp.fires());
  EXPECT_GT(fired, 20);   // ~60 expected
  EXPECT_LT(fired, 120);

  fp.disarm();
  EXPECT_FALSE(fp.should_fire());
  EXPECT_FALSE(fp.armed());
}

TEST(Failpoints, SpecStringConfiguresSchedules) {
  ScopedDisarm guard;
  Registry::global().configure_from_spec(
      "test.a=every:4,test.b=prob:0.5:9@250,test.c=nth:1");
  EXPECT_TRUE(Registry::global().failpoint("test.a").armed());
  EXPECT_TRUE(Registry::global().failpoint("test.b").armed());
  EXPECT_DOUBLE_EQ(Registry::global().failpoint("test.b").arg(), 250.0);
  EXPECT_TRUE(Registry::global().failpoint("test.c").should_fire());

  EXPECT_THROW(TriggerSpec::parse("sometimes"), std::invalid_argument);
  EXPECT_THROW(TriggerSpec::parse("every:0"), std::invalid_argument);
  EXPECT_THROW(Registry::global().configure_from_spec("=every:2"),
               std::invalid_argument);

  const TriggerSpec s = TriggerSpec::parse("prob:0.25:17@1500");
  EXPECT_EQ(s.mode, fault::TriggerMode::kProb);
  EXPECT_DOUBLE_EQ(s.p, 0.25);
  EXPECT_EQ(s.seed, 17u);
  EXPECT_DOUBLE_EQ(s.arg, 1500.0);
}

// --- hardening that needs no injected faults (runs in every build) ----------

TEST(ChaosStream, WorkItemExceptionDoesNotKillTheStream) {
  obs::Counter& errors = obs::Registry::global().counter("stream.work_errors");
  const auto before = errors.value();
  bool second_ran = false;
  {
    Stream s("chaos");
    s.enqueue([] { throw std::runtime_error("injected kernel failure"); });
    Event e = s.record();
    s.enqueue([&second_ran] { second_ran = true; });
    s.synchronize();
    EXPECT_TRUE(e.query());  // events after the faulty item still fire
  }
  EXPECT_TRUE(second_ran);
  EXPECT_EQ(errors.value(), before + 1);
}

TEST(ChaosPool, BudgetBackpressureBlocksUntilRelease) {
  PinnedPoolConfig pc;
  pc.max_bytes = 64 * 1024;  // budget == exactly one (64 KiB-rounded) bucket
  pc.acquire_timeout = std::chrono::milliseconds(2000);
  PinnedPool pool(pc);

  Tensor held = pool.acquire({16, 8}, DType::kF32);
  EXPECT_EQ(pool.alloc_count(), 1u);
  EXPECT_FALSE(pool.try_acquire({16, 8}, DType::kF32).has_value());

  // A second acquire must wait for the release, then recycle — not allocate.
  Watchdog wd(std::chrono::milliseconds(10000), "pool backpressure");
  std::thread releaser([&pool, &held] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pool.release(std::move(held));
  });
  Tensor again = pool.acquire({16, 8}, DType::kF32);
  releaser.join();
  EXPECT_TRUE(again.defined());
  EXPECT_EQ(pool.alloc_count(), 1u);  // recycled, not grown
  EXPECT_GE(pool.backpressure_waits(), 1u);
  EXPECT_EQ(pool.overshoots(), 0u);
}

TEST(ChaosPool, TimeoutOvershootsInsteadOfDeadlocking) {
  PinnedPoolConfig pc;
  pc.max_bytes = 64 * 1024;  // one bucket
  pc.acquire_timeout = std::chrono::milliseconds(20);
  PinnedPool pool(pc);

  Tensor a = pool.acquire({16, 8}, DType::kF32);
  Watchdog wd(std::chrono::milliseconds(10000), "pool overshoot");
  Tensor b = pool.acquire({16, 8}, DType::kF32);  // nobody releases
  EXPECT_TRUE(b.defined());
  EXPECT_EQ(pool.alloc_count(), 2u);
  EXPECT_EQ(pool.overshoots(), 1u);
  EXPECT_GT(pool.allocated_bytes(), pc.max_bytes);
}

TEST(ChaosServe, PoisonRequestIsRejectedAtSubmit) {
  const Dataset& ds = chaos_dataset();
  nn::ModelConfig mc;
  mc.in_channels = ds.feature_dim;
  mc.hidden_channels = 8;
  mc.out_channels = ds.num_classes;
  mc.num_layers = 2;
  mc.seed = 3;
  DeviceSim device;
  serve::ServeConfig sc;
  sc.fanouts = {4, 4};
  serve::InferenceServer server(ds, nn::make_model("sage", mc), device, sc);

  auto bad = server.submit({ds.graph.num_nodes() + 5}).get();
  EXPECT_EQ(bad.status, serve::RequestStatus::kInvalid);
  EXPECT_TRUE(bad.predictions.empty());
  auto negative = server.submit({NodeId{-1}}).get();
  EXPECT_EQ(negative.status, serve::RequestStatus::kInvalid);

  // The pipeline is untouched by poison: a valid request still serves.
  auto good = server.predict({0, 1, 2});
  EXPECT_EQ(good.status, serve::RequestStatus::kOk);
  EXPECT_EQ(good.predictions.size(), 3u);
  EXPECT_GE(server.stats().invalid, 2);
}

// --- injected-fault chaos (needs SALIENT_FAILPOINTS=ON) ---------------------

#define SKIP_WITHOUT_FAILPOINTS()                                       \
  if (!fault::kFailpointsCompiledIn) {                                  \
    GTEST_SKIP() << "build with -DSALIENT_FAILPOINTS=ON to run chaos "  \
                    "injection";                                        \
  }

/// The fixed training-chaos schedule: worker deaths, lock-free queue
/// misses, blocking-queue wedges, and staging exhaustion, all seeded.
void arm_training_schedule() {
  auto& reg = Registry::global();
  reg.configure("prep.worker.die", TriggerSpec::every(5));
  reg.configure("mpmc.prep_in.pop_empty", TriggerSpec::prob(0.2, 11));
  reg.configure("mpmc.prep_in.push_full", TriggerSpec::prob(0.15, 12));
  reg.configure("queue.prep_out.push.wedge",
                TriggerSpec::prob(0.2, 13).with_arg(300));
  reg.configure("queue.prep_out.pop.wedge",
                TriggerSpec::prob(0.2, 14).with_arg(300));
  reg.configure("pinned.exhausted", TriggerSpec::every(6));
}

TEST(ChaosTraining, FixedScheduleIsLosslessAndBitwiseDeterministic) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(60000), "training chaos (fixed)");
  const LoaderConfig cfg = chaos_loader_config();

  const EpochResult baseline = run_epoch(cfg);  // fault-free reference
  const auto num_batches =
      static_cast<std::int64_t>(baseline.hash_by_index.size());
  ASSERT_GT(num_batches, 10);
  expect_exactly_once(baseline, num_batches);
  EXPECT_EQ(baseline.worker_deaths, 0);

  arm_training_schedule();
  const EpochResult run1 = run_epoch(cfg);
  const std::int64_t deaths1 = run1.worker_deaths;
  arm_training_schedule();  // re-arming resets counters: same schedule
  const EpochResult run2 = run_epoch(cfg);

  // Lossless: every batch exactly once, despite worker deaths en route.
  expect_exactly_once(run1, num_batches);
  expect_exactly_once(run2, num_batches);
  EXPECT_GE(deaths1, 1) << "schedule should have killed at least one worker";

  // Bitwise determinism: recovery replays the exact same batches — the
  // chaos runs match each other *and* the fault-free baseline.
  EXPECT_EQ(run1.hash_by_index, baseline.hash_by_index);
  EXPECT_EQ(run2.hash_by_index, baseline.hash_by_index);
}

TEST(ChaosTraining, RandomizedSchedulesNeverLoseOrDuplicateBatches) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(120000), "training chaos (random)");
  const LoaderConfig cfg = chaos_loader_config();
  const EpochResult baseline = run_epoch(cfg);
  const auto num_batches =
      static_cast<std::int64_t>(baseline.hash_by_index.size());

  for (std::uint64_t seed : {101u, 202u, 303u}) {
    auto& reg = Registry::global();
    reg.configure("prep.worker.die", TriggerSpec::prob(0.15, seed));
    reg.configure("mpmc.prep_in.pop_empty", TriggerSpec::prob(0.3, seed + 1));
    reg.configure("mpmc.prep_in.push_full", TriggerSpec::prob(0.2, seed + 2));
    reg.configure("queue.prep_out.push.wedge",
                  TriggerSpec::prob(0.1, seed + 3).with_arg(500));
    reg.configure("pinned.exhausted", TriggerSpec::prob(0.1, seed + 4));
    const EpochResult r = run_epoch(cfg);
    expect_exactly_once(r, num_batches);
    EXPECT_EQ(r.hash_by_index, baseline.hash_by_index) << "seed " << seed;
  }
}

TEST(ChaosPresample, AbortedWarmupDegradesToDegreeDeterministically) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(60000), "presample abort chaos");
  const Dataset& ds = chaos_dataset();
  CachePolicyConfig cfg;
  cfg.kind = CachePolicyKind::kPresample;
  cfg.fanouts = {6, 4};
  cfg.batch_size = 128;
  cfg.seed = 7;
  cfg.presample_workers = 0;  // serial warmup: partial counts are scripted

  // Immediate abort: zero batches counted, so the all-zero frequency
  // ranking degrades to exactly the degree policy's pinned set — an
  // interrupted warmup never pins arbitrary rows.
  Registry::global().configure("prep.cache.presample.abort",
                               TriggerSpec::always());
  const FeatureCache interrupted(ds, 250, cfg);
  CachePolicyConfig deg = cfg;
  deg.kind = CachePolicyKind::kDegree;
  const FeatureCache degree(ds, 250, deg);
  EXPECT_EQ(interrupted.resident_nodes(), degree.resident_nodes());
  EXPECT_GE(obs::Registry::global().counter("prep.presample.aborts").value(),
            1);

  // Mid-warmup abort: re-arming the same spec replays the same partial
  // counting, so the pinned set is identical run to run — and differs from
  // the plain degree fallback (some frequency signal survived).
  Registry::global().configure("prep.cache.presample.abort",
                               TriggerSpec::nth(3));
  const FeatureCache partial1(ds, 250, cfg);
  Registry::global().configure("prep.cache.presample.abort",
                               TriggerSpec::nth(3));
  const FeatureCache partial2(ds, 250, cfg);
  EXPECT_EQ(partial1.resident_nodes(), partial2.resident_nodes());
}

TEST(ChaosDma, TransientTransferErrorsRetryLosslessly) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  auto& reg = obs::Registry::global();
  const auto retries_before = reg.counter("dma.retries").value();

  DmaConfig dc;
  dc.latency_us = 0.5;
  dc.retry_backoff_us = 20.0;
  DmaEngine dma(dc);
  Registry::global().configure("dma.h2d", TriggerSpec::every(2));

  std::vector<std::uint8_t> src(4096), dst(4096, 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  for (int copy = 0; copy < 4; ++copy) {
    ASSERT_NO_THROW(
        dma.copy(dst.data(), src.data(), src.size(), /*pinned=*/true));
    EXPECT_EQ(dst, src);  // data integrity across the retry path
  }
  EXPECT_GE(reg.counter("dma.retries").value(), retries_before + 2);
}

TEST(ChaosDma, ExhaustedRetriesRaiseDmaError) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  DmaConfig dc;
  dc.max_retries = 2;
  dc.retry_backoff_us = 5.0;
  DmaEngine dma(dc);
  Registry::global().configure("dma.h2d", TriggerSpec::always());
  std::uint64_t word = 0, out = 0;
  EXPECT_THROW(dma.copy(&out, &word, sizeof(word), true), DmaError);
  const auto& fp = Registry::global().failpoint("dma.h2d");
  EXPECT_EQ(fp.fires(), 3u);  // initial attempt + max_retries
}

TEST(ChaosServe, RandomFaultsDegradeGracefullyAndDrainOnShutdown) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(120000), "serving chaos");

  const Dataset& ds = chaos_dataset();
  nn::ModelConfig mc;
  mc.in_channels = ds.feature_dim;
  mc.hidden_channels = 8;
  mc.out_channels = ds.num_classes;
  mc.num_layers = 2;
  mc.seed = 5;
  DeviceSim device;
  serve::ServeConfig sc;
  sc.fanouts = {4, 4};
  sc.queue_capacity = 16;  // small: wedges should force shedding, not OOM
  sc.batch.max_batch_nodes = 32;
  sc.batch.max_wait = std::chrono::microseconds(500);
  sc.num_prep_workers = 2;

  auto& reg = Registry::global();
  reg.configure("serve.prep.fail", TriggerSpec::prob(0.25, 71));
  reg.configure("serve.batcher.wedge", TriggerSpec::prob(0.2, 72).with_arg(1500));
  reg.configure("stream.wedge", TriggerSpec::prob(0.05, 73).with_arg(400));
  reg.configure("queue.serve_prep.pop.wedge",
                TriggerSpec::prob(0.1, 74).with_arg(300));
  reg.configure("pinned.exhausted", TriggerSpec::prob(0.05, 75));

  constexpr int kRequests = 150;
  std::vector<std::future<serve::Response>> futures;
  int ok = 0, shed = 0, failed = 0;
  {
    serve::InferenceServer server(ds, nn::make_model("sage", mc), device, sc);
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
      futures.push_back(
          server.submit({static_cast<NodeId>((i * 37) % ds.graph.num_nodes()),
                         static_cast<NodeId>((i * 11 + 5) %
                                             ds.graph.num_nodes())}));
      if (i % 8 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    // Destruction mid-traffic must drain: every admitted request resolves.
  }
  for (auto& f : futures) {
    const serve::Response r = f.get();  // would hang on a wedged pipeline
    switch (r.status) {
      case serve::RequestStatus::kOk:
        ++ok;
        EXPECT_EQ(r.predictions.size(), 2u);
        for (const auto p : r.predictions) {
          EXPECT_GE(p, 0);
          EXPECT_LT(p, ds.num_classes);
        }
        break;
      case serve::RequestStatus::kShed:
        ++shed;
        break;
      case serve::RequestStatus::kFailed:
        ++failed;
        break;
      default:
        ADD_FAILURE() << "unexpected status "
                      << serve::to_string(r.status);
    }
  }
  EXPECT_EQ(ok + shed + failed, kRequests);
  EXPECT_GT(ok, 0) << "degradation must not be total";
  EXPECT_GT(failed, 0) << "the prep-fault schedule should have fired";
}

// --- cluster chaos: link/node faults on the simulated cluster ---------------
// (src/dist/cluster/; failpoints dist.net.drop, dist.net.degrade,
// dist.node.fail, dist.node.slow — see docs/DISTRIBUTED.md)

dist::ClusterConfig chaos_cluster_config() {
  const Dataset& ds = chaos_dataset();
  dist::ClusterConfig cc;
  cc.partition.num_nodes = 2;
  cc.partition.seed = 5;
  cc.cache.cache_percentage = 0.05;
  cc.cache.presample_epochs = 1;
  cc.model.in_channels = ds.feature_dim;
  cc.model.hidden_channels = 24;
  cc.model.out_channels = ds.num_classes;
  cc.model.num_layers = 2;
  cc.model.seed = 9;
  cc.fanouts = {6, 4};
  cc.batch_size = 256;
  cc.seed = 33;
  return cc;
}

/// One fresh 2-node epoch under whatever failpoint schedule is armed, at
/// the config's default pipeline depth (>= 1: faults land mid-overlap, with
/// neighbouring batches' fetches already posted on the interconnect).
dist::ClusterEpochResult run_cluster_epoch() {
  dist::ClusterTrainer t(chaos_dataset(), chaos_cluster_config());
  return t.train_epoch(0);
}

/// Same epoch at an explicit pipeline depth (0 = bulk-synchronous).
dist::ClusterEpochResult run_cluster_epoch_at_depth(int depth) {
  dist::ClusterConfig cc = chaos_cluster_config();
  cc.pipeline_depth = depth;
  dist::ClusterTrainer t(chaos_dataset(), cc);
  return t.train_epoch(0);
}

TEST(ChaosCluster, DroppedMessagesRetryWithoutChangingResults) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(120000), "cluster drop chaos");

  const auto baseline = run_cluster_epoch();
  ASSERT_GT(baseline.remote_feature_bytes, 0u);
  ASSERT_EQ(baseline.net_retries, 0);

  // Every 3rd message attempt is dropped: each drop is retried within the
  // interconnect's bounded budget, charged wire time + backoff, and the
  // payload is committed only on the delivered attempt — so the training
  // outcome and the delivered traffic are identical to the clean run.
  Registry::global().configure("dist.net.drop", TriggerSpec::every(3));
  const auto dropped = run_cluster_epoch();
  EXPECT_GT(dropped.net_retries, 0) << "the schedule should have dropped";
  EXPECT_EQ(dropped.mean_loss, baseline.mean_loss)
      << "message drops must be lossless";
  EXPECT_EQ(dropped.remote_feature_bytes, baseline.remote_feature_bytes);
  EXPECT_EQ(dropped.wire_bytes, baseline.wire_bytes);
  EXPECT_GT(dropped.sim_net_seconds, baseline.sim_net_seconds)
      << "retries must cost simulated time";
}

TEST(ChaosCluster, UndeliverableMessageRaisesNetError) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(120000), "cluster drop exhaustion");
  Registry::global().configure("dist.net.drop", TriggerSpec::always());
  EXPECT_THROW(run_cluster_epoch(), dist::NetError);
}

TEST(ChaosCluster, DegradedLinksSlowTheEpochButChangeNothingElse) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(120000), "cluster degrade chaos");

  const auto baseline = run_cluster_epoch();
  // Quarter-bandwidth links on every message.
  Registry::global().configure("dist.net.degrade",
                               TriggerSpec::always().with_arg(4));
  const auto degraded = run_cluster_epoch();
  EXPECT_EQ(degraded.mean_loss, baseline.mean_loss);
  EXPECT_EQ(degraded.remote_feature_bytes, baseline.remote_feature_bytes);
  EXPECT_EQ(degraded.net_retries, 0);
  EXPECT_GT(degraded.sim_net_seconds, baseline.sim_net_seconds)
      << "a degraded link must only cost simulated bandwidth";
}

TEST(ChaosCluster, FailedNodeStepRetriesLosslessly) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(120000), "cluster node-fail chaos");

  const auto baseline = run_cluster_epoch();
  // The 2nd step attempt anywhere in the cluster fails once; the node
  // redoes the step (deterministic resampling => identical batch).
  Registry::global().configure("dist.node.fail", TriggerSpec::nth(2));
  const auto failed = run_cluster_epoch();
  EXPECT_EQ(failed.node_retries, 1);
  EXPECT_EQ(failed.mean_loss, baseline.mean_loss)
      << "a retried node step must be lossless";
  EXPECT_EQ(failed.remote_feature_bytes, baseline.remote_feature_bytes);
}

TEST(ChaosCluster, PermanentNodeFailureRaisesClusterError) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(120000), "cluster node loss");
  Registry::global().configure("dist.node.fail", TriggerSpec::always());
  EXPECT_THROW(run_cluster_epoch(), dist::ClusterError);
}

TEST(ChaosCluster, WedgedNodeIsFlaggedAsStraggler) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(120000), "cluster straggler chaos");

  // Wedge one step attempt for 0.6 s — far above both the absolute floor
  // (0.25 s) and factor x median of this tiny epoch — on whichever node
  // takes the first hit. Exactly that node must be flagged.
  Registry::global().configure("dist.node.slow",
                               TriggerSpec::nth(1).with_arg(600000));
  const auto wedged = run_cluster_epoch();
  ASSERT_EQ(wedged.stragglers.size(), 1u);
  const int slow = wedged.stragglers[0];
  EXPECT_GT(wedged.node_seconds[static_cast<std::size_t>(slow)], 0.6);
  EXPECT_EQ(wedged.node_retries, 0);

  // A clean epoch of the same shape flags nobody.
  Registry::global().disarm_all();
  const auto clean = run_cluster_epoch();
  EXPECT_TRUE(clean.stragglers.empty());
}

TEST(ChaosCluster, RetriedPostedFetchDeliversIntactPayload) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(120000), "async drop retry");

  // Clean async baseline.
  dist::InterconnectConfig cfg;
  std::vector<char> payload(1 << 12);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 31 + 7);
  }
  std::vector<char> out(payload.size());
  dist::Interconnect clean(2, cfg);
  const auto clean_posted =
      clean.post_fetch(0, 1, payload.data(), out.data(), payload.size(), 0.0);

  // First attempt dropped, retry delivered: the posted fetch completes
  // later (wire time of both attempts + backoff) but wait_fetch still
  // commits the intact payload — a drop can never leave torn bytes.
  Registry::global().configure("dist.net.drop", TriggerSpec::nth(1));
  dist::Interconnect net(2, cfg);
  std::fill(out.begin(), out.end(), 0);
  const auto posted =
      net.post_fetch(0, 1, payload.data(), out.data(), payload.size(), 0.0);
  EXPECT_EQ(net.retries(), 1);
  EXPECT_GT(posted.completion, clean_posted.completion)
      << "the dropped attempt must cost simulated time";
  EXPECT_DOUBLE_EQ(net.wait_fetch(posted.id), posted.completion);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(net.pending_fetches(), 0);
}

TEST(ChaosCluster, PipelinedTrainerDrainsInFlightFetchesOnFailure) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(120000), "pipeline drain on failure");

  // No retry budget: the first dropped message is undeliverable, and it
  // fires mid-overlap — fetches for the neighbouring in-flight batches are
  // already posted when the epoch aborts. The trainer must drain them all
  // before surfacing NetError, leaving nothing in flight.
  dist::ClusterConfig cc = chaos_cluster_config();
  cc.net.max_retries = 0;
  ASSERT_GE(cc.pipeline_depth, 1);
  Registry::global().configure("dist.net.drop", TriggerSpec::every(3));
  dist::ClusterTrainer t(chaos_dataset(), cc);
  EXPECT_THROW(t.train_epoch(0), dist::NetError);
  EXPECT_EQ(t.interconnect().pending_fetches(), 0)
      << "an aborted epoch must not leave posted fetches in flight";
}

TEST(ChaosCluster, MidOverlapFaultsAreBitwiseInvariantAcrossProtocols) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(120000), "mid-overlap determinism");

  // The full invariance square: {bulk, pipelined} x {clean, faulted} all
  // produce the same losses and deliver the same traffic. Drops land
  // mid-overlap on the pipelined runs (depth 2 keeps three batches in
  // flight) and are retried inside the posted fetch.
  const auto bulk_clean = run_cluster_epoch_at_depth(0);
  const auto pipe_clean = run_cluster_epoch_at_depth(2);
  Registry::global().configure("dist.net.drop", TriggerSpec::every(3));
  const auto bulk_fault = run_cluster_epoch_at_depth(0);
  const auto pipe_fault = run_cluster_epoch_at_depth(2);
  Registry::global().disarm_all();

  EXPECT_GT(pipe_fault.net_retries, 0) << "the schedule should have dropped";
  for (const auto* r : {&pipe_clean, &bulk_fault, &pipe_fault}) {
    EXPECT_EQ(r->mean_loss, bulk_clean.mean_loss);
    EXPECT_EQ(r->remote_feature_bytes, bulk_clean.remote_feature_bytes);
    EXPECT_EQ(r->remote_rows_fetched, bulk_clean.remote_rows_fetched);
  }
  // Overlap still wins under faults: retries inflate both protocols'
  // simulated epochs, but the pipelined one keeps them off the critical
  // path wherever compute covers them.
  EXPECT_LT(pipe_fault.sim_epoch_seconds, bulk_fault.sim_epoch_seconds);
}

TEST(ChaosCluster, DegradedLinkMidOverlapStallsThePipelineDeterministically) {
  SKIP_WITHOUT_FAILPOINTS();
  ScopedDisarm guard;
  Watchdog wd(std::chrono::milliseconds(120000), "mid-overlap degrade");

  const auto clean = run_cluster_epoch_at_depth(2);
  // 64x slower links: posted fetches now outlast the compute window, so
  // the pipeline records stalls — deterministically.
  Registry::global().configure("dist.net.degrade",
                               TriggerSpec::always().with_arg(64));
  const auto a = run_cluster_epoch_at_depth(2);
  const auto b = run_cluster_epoch_at_depth(2);
  EXPECT_EQ(a.mean_loss, clean.mean_loss)
      << "a degraded link must only cost simulated time";
  EXPECT_EQ(a.remote_feature_bytes, clean.remote_feature_bytes);
  EXPECT_GT(a.sim_epoch_seconds, clean.sim_epoch_seconds);
  EXPECT_EQ(a.mean_loss, b.mean_loss);
  EXPECT_DOUBLE_EQ(a.sim_epoch_seconds, b.sim_epoch_seconds);
  EXPECT_DOUBLE_EQ(a.stall_seconds, b.stall_seconds);
}

}  // namespace
}  // namespace salient
