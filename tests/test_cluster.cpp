// Cluster-simulation tests (src/dist/cluster/, docs/DISTRIBUTED.md):
// partition invariants (unique ownership, symmetric halo/boundary maps),
// batch chunking, interconnect timing/occupancy/payload integrity (sync
// transfer and async post_fetch/wait_fetch, duplex NIC accounting), remote
// cache plans against the uncached per-owner grouping, monotone replication
// under growing capacity, and the trainer's determinism ladder — a 1-node
// cluster reproduces the single-node Trainer's loss trajectory bitwise, a
// fixed (seed, node count, pipeline depth) is bitwise reproducible, 1/2/4-
// node runs learn while keeping replicas exactly in sync, and the pipelined
// step protocol at any depth reproduces the bulk-synchronous losses bitwise
// while strictly lowering simulated epoch time.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dist/cluster/cluster_trainer.h"
#include "dist/cluster/interconnect.h"
#include "dist/cluster/partitioner.h"
#include "dist/cluster/remote_cache.h"
#include "graph/dataset.h"
#include "sampling/distributed.h"
#include "sampling/fast_sampler.h"
#include "train/trainer.h"

namespace salient {
namespace {

using dist::build_cluster_partition;
using dist::ClusterConfig;
using dist::ClusterPartition;
using dist::ClusterPartitionConfig;
using dist::ClusterTrainer;
using dist::Interconnect;
using dist::InterconnectConfig;
using dist::PartitionStrategy;
using dist::RemoteCacheConfig;
using dist::RemoteFeatureCache;

Dataset& cluster_dataset() {
  static Dataset ds = [] {
    DatasetConfig c;
    c.name = "cluster-test";
    c.num_nodes = 4000;
    c.feature_dim = 16;
    c.num_classes = 5;
    c.avg_degree = 9;
    c.powerlaw_exponent = 2.0;  // skewed degrees: caching has something to do
    c.p_in = 0.85;
    c.feature_signal = 0.4;
    c.feature_noise = 0.8;
    c.seed = 77;
    return generate_dataset(c);
  }();
  return ds;
}

ClusterConfig cluster_config(int nodes, double cache_pct = 0.0,
                             CachePolicyKind policy =
                                 CachePolicyKind::kPresample) {
  const Dataset& ds = cluster_dataset();
  ClusterConfig cc;
  cc.partition.num_nodes = nodes;
  cc.partition.strategy = PartitionStrategy::kGreedy;
  cc.partition.seed = 5;
  cc.cache.policy = policy;
  cc.cache.cache_percentage = cache_pct;
  cc.cache.presample_epochs = 1;
  cc.model.in_channels = ds.feature_dim;
  cc.model.hidden_channels = 32;
  cc.model.out_channels = ds.num_classes;
  cc.model.num_layers = 2;
  cc.model.seed = 9;
  cc.fanouts = {6, 4};
  cc.batch_size = 256;
  cc.seed = 21;
  cc.lr = 5e-3;
  return cc;
}

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

TEST(ClusterPartition, InvariantsHoldForBothStrategies) {
  const Dataset& ds = cluster_dataset();
  for (const auto strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kGreedy}) {
    for (const int nodes : {1, 2, 4}) {
      ClusterPartitionConfig cfg;
      cfg.num_nodes = nodes;
      cfg.strategy = strategy;
      cfg.seed = 3;
      const ClusterPartition cp = build_cluster_partition(ds.graph, cfg);
      ASSERT_TRUE(cp.valid(ds.graph))
          << dist::partition_strategy_name(strategy) << " x" << nodes;

      // Unique ownership: every vertex owned exactly once.
      std::int64_t owned_total = 0;
      std::vector<char> seen(static_cast<std::size_t>(ds.graph.num_nodes()),
                             0);
      for (int p = 0; p < nodes; ++p) {
        owned_total += static_cast<std::int64_t>(cp.owned[p].size());
        for (const NodeId v : cp.owned[p]) {
          ASSERT_EQ(cp.owner_of(v), p);
          ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
          seen[static_cast<std::size_t>(v)] = 1;
        }
      }
      ASSERT_EQ(owned_total, ds.graph.num_nodes());

      // Symmetric boundary view: q's boundary toward p is exactly the
      // q-owned slice of p's halo.
      for (int p = 0; p < nodes; ++p) {
        ASSERT_TRUE(cp.boundary[static_cast<std::size_t>(p)]
                        [static_cast<std::size_t>(p)].empty());
        std::int64_t boundary_total = 0;
        for (int q = 0; q < nodes; ++q) {
          for (const NodeId v :
               cp.boundary[static_cast<std::size_t>(q)]
                          [static_cast<std::size_t>(p)]) {
            ASSERT_EQ(cp.owner_of(v), q);
            ASSERT_TRUE(std::binary_search(cp.halo[p].begin(),
                                           cp.halo[p].end(), v));
            ++boundary_total;
          }
        }
        ASSERT_EQ(boundary_total,
                  static_cast<std::int64_t>(cp.halo[p].size()));
      }

      if (nodes == 1) {
        ASSERT_EQ(cp.total_halo(), 0);
        ASSERT_DOUBLE_EQ(cp.edge_cut(), 0.0);
      }
    }
  }
}

TEST(ClusterPartition, GreedyCutsFewerEdgesThanHash) {
  const Dataset& ds = cluster_dataset();
  ClusterPartitionConfig cfg;
  cfg.num_nodes = 4;
  cfg.strategy = PartitionStrategy::kHash;
  const auto hash = build_cluster_partition(ds.graph, cfg);
  cfg.strategy = PartitionStrategy::kGreedy;
  const auto greedy = build_cluster_partition(ds.graph, cfg);
  EXPECT_LT(greedy.edge_cut(), hash.edge_cut());
  EXPECT_LT(greedy.total_halo(), hash.total_halo());
  EXPECT_LE(greedy.balance(), cfg.capacity_slack + 0.05);
}

TEST(ClusterPartition, StrategyNamesRoundTrip) {
  EXPECT_EQ(dist::parse_partition_strategy("hash"), PartitionStrategy::kHash);
  EXPECT_EQ(dist::parse_partition_strategy("greedy"),
            PartitionStrategy::kGreedy);
  EXPECT_STREQ(dist::partition_strategy_name(PartitionStrategy::kHash),
               "hash");
  EXPECT_STREQ(dist::partition_strategy_name(PartitionStrategy::kGreedy),
               "greedy");
  EXPECT_THROW(dist::parse_partition_strategy("metis"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Batch chunking
// ---------------------------------------------------------------------------

TEST(ChunkRange, BalancedCoverAndOneNodeIdentity) {
  for (const std::int64_t rows : {1, 2, 7, 256, 257, 1000}) {
    for (const int world : {1, 2, 3, 4, 8}) {
      std::int64_t covered = 0;
      std::int64_t prev_end = 0;
      std::int64_t min_size = rows, max_size = 0;
      for (int p = 0; p < world; ++p) {
        const ChunkRange r = chunk_range(rows, world, p);
        ASSERT_EQ(r.begin, prev_end);  // contiguous, in rank order
        prev_end = r.end;
        covered += r.size();
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
      }
      ASSERT_EQ(covered, rows);
      ASSERT_LE(max_size - min_size, 1);  // balanced within one row
    }
    const ChunkRange whole = chunk_range(rows, 1, 0);
    ASSERT_EQ(whole.begin, 0);
    ASSERT_EQ(whole.end, rows);
  }
}

TEST(PipelineAdmitRange, AdmitsEveryBatchExactlyOnceAheadOfTraining) {
  for (const int depth : {0, 1, 2, 4}) {
    for (const std::int64_t steps : {1LL, 2LL, 3LL, 7LL, 10LL}) {
      std::vector<int> admitted(static_cast<std::size_t>(steps), 0);
      for (std::int64_t b = 0; b < steps; ++b) {
        const ChunkRange r = pipeline_admit_range(b, depth, steps);
        for (std::int64_t j = r.begin; j < r.end; ++j) {
          ASSERT_GE(j, b) << "a batch may not be admitted after it trains";
          ASSERT_LE(j, b + depth) << "admission must respect the depth bound";
          ++admitted[static_cast<std::size_t>(j)];
        }
      }
      for (std::int64_t j = 0; j < steps; ++j) {
        ASSERT_EQ(admitted[static_cast<std::size_t>(j)], 1)
            << "batch " << j << " at depth " << depth << ", " << steps
            << " steps";
      }
      // depth 0 degenerates to the bulk-synchronous one-batch-per-step
      // schedule.
      if (depth == 0) {
        const ChunkRange r = pipeline_admit_range(steps - 1, 0, steps);
        ASSERT_EQ(r.size(), 1);
        ASSERT_EQ(r.begin, steps - 1);
      }
    }
  }
  EXPECT_THROW(pipeline_admit_range(-1, 0, 1), std::invalid_argument);
  EXPECT_THROW(pipeline_admit_range(0, -1, 1), std::invalid_argument);
  EXPECT_THROW(pipeline_admit_range(0, 0, 0), std::invalid_argument);
}

TEST(GroupRowsByOwner, PartitionsEveryInputRow) {
  const Dataset& ds = cluster_dataset();
  ClusterPartitionConfig cfg;
  cfg.num_nodes = 3;
  const auto cp = build_cluster_partition(ds.graph, cfg);
  FastSampler sampler(ds.graph, {6, 4});
  const Mfg mfg = sampler.sample({ds.train_idx.data(), 128}, 99);
  const auto rows = group_rows_by_owner(mfg, cp.assignment);
  ASSERT_EQ(rows.size(), 3u);
  std::int64_t covered = 0;
  for (int q = 0; q < 3; ++q) {
    ASSERT_TRUE(std::is_sorted(rows[q].begin(), rows[q].end()));
    for (const std::int64_t i : rows[q]) {
      ASSERT_EQ(cp.owner_of(mfg.n_ids[static_cast<std::size_t>(i)]), q);
    }
    covered += static_cast<std::int64_t>(rows[q].size());
  }
  ASSERT_EQ(covered, static_cast<std::int64_t>(mfg.n_ids.size()));
}

// ---------------------------------------------------------------------------
// Interconnect
// ---------------------------------------------------------------------------

TEST(InterconnectTest, TransferTimeMatchesModelAndPayloadArrives) {
  InterconnectConfig cfg;
  cfg.link_gbps = 8.0;
  cfg.latency_us = 50.0;
  cfg.message_overhead_bytes = 100;
  Interconnect net(2, cfg);

  std::vector<float> src(250, 1.5f), dst(250, 0.0f);
  const std::size_t bytes = src.size() * sizeof(float);  // 1000 B payload
  const double end = net.transfer(0, 1, src.data(), dst.data(), bytes, 0.0);
  const double expect =
      50e-6 + static_cast<double>(bytes + 100) * 8.0 / (8.0 * 1e9);
  EXPECT_NEAR(end, expect, 1e-12);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(net.messages(), 1);
  EXPECT_EQ(net.bytes_on_wire(), bytes + 100);
  EXPECT_EQ(net.retries(), 0);
}

TEST(InterconnectTest, ReceiverNicSerializesConcurrentSenders) {
  InterconnectConfig cfg;
  cfg.latency_us = 10.0;
  Interconnect net(3, cfg);
  std::vector<char> payload(1 << 16), sink(1 << 16);
  const double e1 =
      net.transfer(0, 2, payload.data(), sink.data(), payload.size(), 0.0);
  // Same destination, same requested start: must queue behind the first.
  const double e2 =
      net.transfer(1, 2, payload.data(), sink.data(), payload.size(), 0.0);
  EXPECT_GT(e2, e1);
  EXPECT_NEAR(e2 - e1, e1, 1e-12);  // identical message => identical cost
  // A message between two idle NICs at time 0 is not delayed.
  Interconnect fresh(3, cfg);
  const double e3 =
      fresh.transfer(0, 1, payload.data(), sink.data(), payload.size(), 0.0);
  EXPECT_NEAR(e3, e1, 1e-12);
}

TEST(InterconnectTest, AllreduceChargesTwoRingPhases) {
  InterconnectConfig cfg;
  cfg.latency_us = 20.0;
  cfg.message_overhead_bytes = 64;
  const std::size_t buffer = 1 << 20;
  for (const int world : {2, 4}) {
    Interconnect net(world, cfg);
    const double end = net.allreduce_time(buffer, 0.0);
    const double chunk = static_cast<double>(buffer) / world + 64.0;
    const double expect =
        2.0 * (world - 1) * (20e-6 + chunk * 8.0 / (10.0 * 1e9));
    EXPECT_NEAR(end, expect, 1e-9) << "world " << world;
  }
  Interconnect one(1, cfg);
  EXPECT_DOUBLE_EQ(one.allreduce_time(buffer, 0.25), 0.25);
}

TEST(InterconnectTest, PostedFetchMatchesSynchronousTransfer) {
  // post_fetch charges exactly the transfer() model — same NIC occupancy,
  // same completion time, same busy accounting — it only defers the payload
  // commit to wait_fetch.
  InterconnectConfig cfg;
  cfg.latency_us = 15.0;
  std::vector<char> payload(1 << 14, 'p'), sync_out(1 << 14),
      async_out(1 << 14);
  Interconnect sync_net(2, cfg);
  const double sync_end = sync_net.transfer(0, 1, payload.data(),
                                            sync_out.data(), payload.size(),
                                            0.5);
  Interconnect async_net(2, cfg);
  const auto posted = async_net.post_fetch(0, 1, payload.data(),
                                           async_out.data(), payload.size(),
                                           0.5);
  EXPECT_DOUBLE_EQ(posted.completion, sync_end);
  EXPECT_DOUBLE_EQ(async_net.busy_seconds(), sync_net.busy_seconds());
  EXPECT_EQ(async_net.pending_fetches(), 1);
  // Commit happens at wait, not post — the receive buffer is untouched
  // until then, like a NIC receive ring.
  EXPECT_EQ(async_out[0], 0);
  EXPECT_DOUBLE_EQ(async_net.wait_fetch(posted.id), posted.completion);
  EXPECT_EQ(async_out, payload);
  EXPECT_EQ(async_net.pending_fetches(), 0);
  // A handle is consumed by its wait.
  EXPECT_THROW(async_net.wait_fetch(posted.id), std::invalid_argument);
}

TEST(InterconnectTest, DuplexNicOverlapsOppositeDirections) {
  // TX and RX NICs are accounted independently: concurrent post_fetch from
  // both endpoints of a link overlaps perfectly (virtual time of one
  // message), while two same-direction messages serialize on the NICs.
  InterconnectConfig cfg;
  cfg.latency_us = 10.0;
  std::vector<char> a(1 << 16, 'a'), b(1 << 16, 'b');
  std::vector<char> out_a(1 << 16), out_b(1 << 16);

  Interconnect serial(2, cfg);
  const auto s1 =
      serial.post_fetch(0, 1, a.data(), out_a.data(), a.size(), 0.0);
  const auto s2 =
      serial.post_fetch(0, 1, b.data(), out_b.data(), b.size(), 0.0);
  EXPECT_GT(s2.completion, s1.completion);  // same direction: queued

  Interconnect duplex(2, cfg);
  const auto d1 =
      duplex.post_fetch(0, 1, a.data(), out_a.data(), a.size(), 0.0);
  const auto d2 =
      duplex.post_fetch(1, 0, b.data(), out_b.data(), b.size(), 0.0);
  EXPECT_DOUBLE_EQ(d2.completion, d1.completion);  // duplex: full overlap
  EXPECT_LT(std::max(d1.completion, d2.completion), s2.completion);
  // Both directions still deliver their own intact payload.
  EXPECT_DOUBLE_EQ(duplex.wait_fetch(d1.id), d1.completion);
  EXPECT_DOUBLE_EQ(duplex.wait_fetch(d2.id), d2.completion);
  EXPECT_EQ(out_a, a);
  EXPECT_EQ(out_b, b);
  // Busy seconds sum per link, so the overlapped pair still charges two
  // message durations — that is what distinguishes busy time from the
  // critical-path epoch time.
  EXPECT_DOUBLE_EQ(duplex.busy_seconds(), serial.busy_seconds());
}

TEST(InterconnectTest, RejectsBadConfigAndNodes) {
  EXPECT_THROW(Interconnect(0, {}), std::invalid_argument);
  InterconnectConfig bad;
  bad.link_gbps = 0.0;
  EXPECT_THROW(Interconnect(2, bad), std::invalid_argument);
  Interconnect net(2, {});
  char c = 0;
  EXPECT_THROW(net.transfer(0, 2, &c, &c, 1, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Remote feature cache
// ---------------------------------------------------------------------------

TEST(RemoteCache, PlanPartitionsRowsAndMatchesOwnerGrouping) {
  const Dataset& ds = cluster_dataset();
  ClusterPartitionConfig pcfg;
  pcfg.num_nodes = 2;
  const auto cp = build_cluster_partition(ds.graph, pcfg);

  RemoteCacheConfig cfg;
  cfg.policy = CachePolicyKind::kDegree;
  cfg.cache_percentage = 0.05;
  cfg.fanouts = {6, 4};
  const RemoteFeatureCache cache(ds, cp, /*node=*/0, cfg);
  EXPECT_STREQ(cache.policy_name(), "degree");
  EXPECT_GT(cache.capacity(), 0);

  FastSampler sampler(ds.graph, {6, 4});
  const Mfg mfg = sampler.sample({ds.train_idx.data(), 128}, 7);
  const auto plan = cache.plan(mfg);
  const auto by_owner = group_rows_by_owner(mfg, cp.assignment);

  // Every input row is exactly one of: cache hit, local, fetched.
  std::int64_t planned = static_cast<std::int64_t>(plan.local_rows.size());
  for (const auto& f : plan.fetches) {
    EXPECT_NE(f.owner, 0);  // never fetch from ourselves
    EXPECT_TRUE(std::is_sorted(f.rows.begin(), f.rows.end()));
    for (const std::int64_t i : f.rows) {
      EXPECT_EQ(cp.owner_of(mfg.n_ids[static_cast<std::size_t>(i)]),
                f.owner);
    }
    planned += static_cast<std::int64_t>(f.rows.size());
  }
  EXPECT_EQ(planned + plan.remote_hits,
            static_cast<std::int64_t>(mfg.n_ids.size()));
  EXPECT_EQ(plan.remote_misses,
            static_cast<std::int64_t>(mfg.n_ids.size()) -
                static_cast<std::int64_t>(plan.local_rows.size()) -
                plan.remote_hits);
  // Local rows are exactly the owner grouping's node-0 rows.
  EXPECT_EQ(plan.local_rows, by_owner[0]);
  // All hits are remote vertices (locals are never admitted).
  for (const NodeId v : cache.cache().resident_nodes()) {
    EXPECT_NE(cp.owner_of(v), 0);
  }
  EXPECT_GT(plan.remote_hits, 0);  // 5% of a skewed graph catches hubs
  EXPECT_GT(plan.remote_hit_rate(), 0.0);
}

TEST(RemoteCache, StaticPoliciesGrowMonotonically) {
  // The structural fact behind the dist_bench --check gate: a static
  // policy's resident set at a smaller capacity is a subset of its resident
  // set at a larger one, so remote traffic cannot increase with capacity.
  const Dataset& ds = cluster_dataset();
  ClusterPartitionConfig pcfg;
  pcfg.num_nodes = 2;
  const auto cp = build_cluster_partition(ds.graph, pcfg);
  for (const auto policy :
       {CachePolicyKind::kDegree, CachePolicyKind::kPresample}) {
    std::vector<NodeId> prev;
    for (const double pct : {0.02, 0.05, 0.1}) {
      RemoteCacheConfig cfg;
      cfg.policy = policy;
      cfg.cache_percentage = pct;
      cfg.presample_epochs = 1;
      cfg.fanouts = {6, 4};
      cfg.batch_size = 256;
      cfg.seed = 21;
      const RemoteFeatureCache cache(ds, cp, 1, cfg);
      auto resident = cache.cache().resident_nodes();
      ASSERT_TRUE(std::includes(resident.begin(), resident.end(),
                                prev.begin(), prev.end()))
          << "capacity growth must only add resident rows";
      prev = std::move(resident);
    }
  }
}

TEST(RemoteCache, ZeroCapacityIsAlwaysFetchAndLruAdmitsRemotesOnly) {
  const Dataset& ds = cluster_dataset();
  ClusterPartitionConfig pcfg;
  pcfg.num_nodes = 2;
  const auto cp = build_cluster_partition(ds.graph, pcfg);

  RemoteCacheConfig none;
  none.cache_percentage = 0.0;
  const RemoteFeatureCache uncached(ds, cp, 0, none);
  EXPECT_EQ(uncached.capacity(), 0);
  FastSampler sampler(ds.graph, {6, 4});
  const Mfg mfg = sampler.sample({ds.train_idx.data(), 64}, 3);
  const auto plan = uncached.plan(mfg);
  EXPECT_EQ(plan.remote_hits, 0);
  const auto by_owner = group_rows_by_owner(mfg, cp.assignment);
  std::int64_t fetched = 0;
  for (const auto& f : plan.fetches) {
    fetched += static_cast<std::int64_t>(f.rows.size());
  }
  EXPECT_EQ(fetched, static_cast<std::int64_t>(by_owner[1].size()));

  RemoteCacheConfig lru;
  lru.policy = CachePolicyKind::kLru;
  lru.cache_percentage = 0.05;
  const RemoteFeatureCache dyn(ds, cp, 0, lru);
  EXPECT_STREQ(dyn.policy_name(), "lru");
  (void)dyn.plan(mfg);  // populates via admission
  for (const NodeId v : dyn.cache().resident_nodes()) {
    EXPECT_NE(cp.owner_of(v), 0);
  }
  const auto warm = dyn.plan(mfg);  // same batch again: hits now
  EXPECT_GT(warm.remote_hits, 0);
}

// ---------------------------------------------------------------------------
// ClusterTrainer
// ---------------------------------------------------------------------------

TEST(ClusterTrainerTest, OneNodeMatchesSingleNodeTrainerBitwise) {
  const Dataset& ds = cluster_dataset();

  // Single-node reference: pipelined SALIENT trainer, one worker, no cache.
  auto model = nn::make_model("sage", [&] {
    nn::ModelConfig mc;
    mc.in_channels = ds.feature_dim;
    mc.hidden_channels = 32;
    mc.out_channels = ds.num_classes;
    mc.num_layers = 2;
    mc.seed = 9;
    return mc;
  }());
  DeviceSim device;
  TrainConfig tc;
  tc.loader.batch_size = 256;
  tc.loader.fanouts = {6, 4};
  tc.loader.num_workers = 1;
  tc.loader.seed = 21;
  tc.lr = 5e-3;
  Trainer trainer(ds, model, device, tc);

  ClusterTrainer cluster(ds, cluster_config(1));
  for (int epoch = 0; epoch < 2; ++epoch) {
    const EpochStats ref = trainer.train_epoch(epoch);
    const auto got = cluster.train_epoch(epoch);
    ASSERT_EQ(got.num_steps, ref.num_batches);
    ASSERT_EQ(got.mean_loss, ref.mean_loss)
        << "1-node cluster must replay the single-node schedule bitwise "
        << "(epoch " << epoch << ")";
    ASSERT_EQ(got.remote_feature_bytes, 0u);
    ASSERT_EQ(got.wire_bytes, 0u);
    ASSERT_DOUBLE_EQ(got.sim_net_seconds, 0.0);
  }
  // Final parameters bitwise identical too.
  const auto ref_params = model->parameters();
  const auto got_params = cluster.replica(0)->parameters();
  ASSERT_EQ(ref_params.size(), got_params.size());
  for (std::size_t i = 0; i < ref_params.size(); ++i) {
    ASSERT_TRUE(
        allclose(ref_params[i].data(), got_params[i].data(), 0.0, 0.0))
        << "parameter " << i;
  }
}

TEST(ClusterTrainerTest, FixedSeedAndNodeCountIsDeterministic) {
  const Dataset& ds = cluster_dataset();
  auto run = [&] {
    ClusterTrainer t(ds, cluster_config(2, 0.05));
    std::vector<double> losses;
    std::vector<std::size_t> bytes;
    for (int e = 0; e < 2; ++e) {
      const auto r = t.train_epoch(e);
      losses.push_back(r.mean_loss);
      bytes.push_back(r.remote_feature_bytes);
    }
    return std::make_pair(losses, bytes);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first) << "losses must be bitwise reproducible";
  EXPECT_EQ(a.second, b.second) << "traffic must be exactly reproducible";
}

TEST(ClusterTrainerTest, MultiNodeLearnsStaysInSyncAndReportsTraffic) {
  const Dataset& ds = cluster_dataset();
  for (const int nodes : {2, 4}) {
    ClusterTrainer t(ds, cluster_config(nodes, 0.05));
    double first = 0, last = 0;
    for (int e = 0; e < 3; ++e) {
      const auto r = t.train_epoch(e);
      if (e == 0) first = r.mean_loss;
      last = r.mean_loss;
      EXPECT_TRUE(t.replicas_in_sync()) << nodes << " nodes, epoch " << e;
      EXPECT_GT(r.remote_feature_bytes, 0u);
      EXPECT_GT(r.sim_net_seconds, 0.0);
      EXPECT_EQ(r.remote_misses, r.remote_rows_fetched);
      EXPECT_EQ(static_cast<int>(r.node_seconds.size()), nodes);
      EXPECT_EQ(r.node_retries, 0);
      EXPECT_EQ(r.net_retries, 0);
    }
    EXPECT_LT(last, first) << nodes << "-node cluster must learn";
  }
}

TEST(ClusterTrainerTest, NodeCountsAgreeWithinTolerance) {
  // Different node counts sample different chunk seeds, so losses are not
  // bitwise equal — but the optimization problem is the same, and after the
  // same number of global steps the trajectories must agree closely.
  const Dataset& ds = cluster_dataset();
  std::vector<double> finals;
  for (const int nodes : {1, 2, 4}) {
    ClusterTrainer t(ds, cluster_config(nodes, 0.05));
    double last = 0;
    for (int e = 0; e < 3; ++e) last = t.train_epoch(e).mean_loss;
    finals.push_back(last);
  }
  for (std::size_t i = 1; i < finals.size(); ++i) {
    EXPECT_NEAR(finals[i], finals[0], 0.25 * std::abs(finals[0]))
        << "node count " << (1u << i);
  }
}

TEST(ClusterTrainerTest, CacheCutsTrafficWithoutChangingLosses) {
  // Replication only changes *where* feature rows come from, never their
  // values: loss trajectories are bitwise invariant to cache capacity,
  // while remote traffic strictly drops.
  const Dataset& ds = cluster_dataset();
  auto run = [&](double pct) {
    ClusterTrainer t(ds, cluster_config(2, pct));
    std::vector<double> losses;
    std::size_t bytes = 0;
    for (int e = 0; e < 2; ++e) {
      const auto r = t.train_epoch(e);
      losses.push_back(r.mean_loss);
      bytes += r.remote_feature_bytes;
    }
    return std::make_pair(losses, bytes);
  };
  const auto uncached = run(0.0);
  const auto cached = run(0.1);
  EXPECT_EQ(uncached.first, cached.first)
      << "caching must not perturb training";
  EXPECT_LT(cached.second, uncached.second);
}

// ---------------------------------------------------------------------------
// Pipelined step protocol (pipeline_depth >= 1)
// ---------------------------------------------------------------------------

/// One protocol run's observables: everything that must be depth-invariant
/// (losses, traffic) plus the simulated epoch time that must not be.
struct ProtocolRun {
  std::vector<double> losses;
  std::int64_t rows_fetched = 0;
  std::size_t feature_bytes = 0;
  double sim_epoch = 0;
  double overlap_saved = 0;
};

ProtocolRun run_protocol(int depth, int nodes, double cache_pct,
                         CachePolicyKind policy, int epochs = 2) {
  ClusterConfig cc = cluster_config(nodes, cache_pct, policy);
  cc.pipeline_depth = depth;
  ClusterTrainer t(cluster_dataset(), cc);
  ProtocolRun run;
  for (int e = 0; e < epochs; ++e) {
    const auto r = t.train_epoch(e);
    EXPECT_EQ(r.pipeline_depth, depth);
    run.losses.push_back(r.mean_loss);
    run.rows_fetched += r.remote_rows_fetched;
    run.feature_bytes += r.remote_feature_bytes;
    run.sim_epoch += r.sim_epoch_seconds;
    run.overlap_saved += r.overlap_saved_seconds;
    EXPECT_TRUE(t.replicas_in_sync()) << "depth " << depth << " epoch " << e;
  }
  EXPECT_EQ(t.interconnect().pending_fetches(), 0)
      << "every posted fetch must be waited on by epoch end";
  return run;
}

TEST(ClusterPipeline, AnyDepthMatchesBulkSynchronousBitwise) {
  // The equivalence theorem of the pipelined protocol: overlap changes
  // *when* fetches move on the virtual clock, never what is trained on.
  // Losses and traffic are bitwise depth-invariant — including under the
  // LRU policy, whose cache state depends on the plan order the two
  // protocols must therefore share — while simulated epoch time strictly
  // drops because fetches leave the critical path.
  for (const auto policy :
       {CachePolicyKind::kPresample, CachePolicyKind::kLru}) {
    const ProtocolRun bulk = run_protocol(0, 2, 0.05, policy);
    EXPECT_DOUBLE_EQ(bulk.overlap_saved, 0.0);
    for (const int depth : {1, 2, 4}) {
      const ProtocolRun pipe = run_protocol(depth, 2, 0.05, policy);
      EXPECT_EQ(pipe.losses, bulk.losses)
          << "depth " << depth << " policy " << static_cast<int>(policy);
      EXPECT_EQ(pipe.rows_fetched, bulk.rows_fetched);
      EXPECT_EQ(pipe.feature_bytes, bulk.feature_bytes);
      EXPECT_LT(pipe.sim_epoch, bulk.sim_epoch)
          << "overlap must shorten the simulated epoch (depth " << depth
          << ")";
      EXPECT_GT(pipe.overlap_saved, 0.0);
    }
  }
}

TEST(ClusterPipeline, DepthZeroIsTheBulkSynchronousPath) {
  // depth=0 dispatches to the exact pre-pipelining step protocol: no
  // overlap accounting, no posted fetches, and the result says so.
  ClusterConfig cc = cluster_config(2, 0.05);
  cc.pipeline_depth = 0;
  ClusterTrainer t(cluster_dataset(), cc);
  const auto r = t.train_epoch(0);
  EXPECT_EQ(r.pipeline_depth, 0);
  EXPECT_DOUBLE_EQ(r.overlap_saved_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.stall_seconds, 0.0);
  EXPECT_EQ(t.interconnect().pending_fetches(), 0);
  EXPECT_GT(r.sim_epoch_seconds, 0.0);
}

TEST(ClusterPipeline, EveryDepthIsBitwiseReproducible) {
  // The determinism ladder holds rung by rung: a fixed (seed, nodes, depth)
  // reproduces losses, traffic and simulated times exactly.
  for (const int depth : {0, 1, 2, 4}) {
    const ProtocolRun a = run_protocol(depth, 2, 0.05,
                                       CachePolicyKind::kPresample);
    const ProtocolRun b = run_protocol(depth, 2, 0.05,
                                       CachePolicyKind::kPresample);
    EXPECT_EQ(a.losses, b.losses) << "depth " << depth;
    EXPECT_EQ(a.rows_fetched, b.rows_fetched) << "depth " << depth;
    EXPECT_DOUBLE_EQ(a.sim_epoch, b.sim_epoch) << "depth " << depth;
    EXPECT_DOUBLE_EQ(a.overlap_saved, b.overlap_saved) << "depth " << depth;
  }
}

TEST(ClusterPipeline, FourNodeEquivalenceAndSpeedup) {
  const ProtocolRun bulk =
      run_protocol(0, 4, 0.05, CachePolicyKind::kPresample, /*epochs=*/1);
  const ProtocolRun pipe =
      run_protocol(2, 4, 0.05, CachePolicyKind::kPresample, /*epochs=*/1);
  EXPECT_EQ(pipe.losses, bulk.losses);
  EXPECT_EQ(pipe.feature_bytes, bulk.feature_bytes);
  EXPECT_LT(pipe.sim_epoch, bulk.sim_epoch);
}

TEST(ClusterPipeline, RejectsNegativeDepthAndComputeRate) {
  ClusterConfig bad = cluster_config(2);
  bad.pipeline_depth = -1;
  EXPECT_THROW(ClusterTrainer(cluster_dataset(), bad),
               std::invalid_argument);
  ClusterConfig bad2 = cluster_config(2);
  bad2.sim_train_us_per_input_row = -0.5;
  EXPECT_THROW(ClusterTrainer(cluster_dataset(), bad2),
               std::invalid_argument);
}

}  // namespace
}  // namespace salient
