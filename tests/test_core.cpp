// System-facade tests: configuration propagation, error paths, and the
// cross-cutting integrations (feature cache through SystemConfig, MFG/model
// depth contracts, device assertion mode by pipeline choice).
#include <gtest/gtest.h>

#include "core/system.h"
#include "sampling/fast_sampler.h"

namespace salient {
namespace {

SystemConfig small_cfg() {
  SystemConfig cfg;
  cfg.dataset = "arxiv-sim";
  cfg.dataset_scale = 0.02;
  cfg.hidden_channels = 16;
  cfg.num_layers = 2;
  cfg.train_fanouts = {6, 4};
  cfg.infer_fanouts = {8, 8};
  cfg.batch_size = 256;
  cfg.num_workers = 1;
  return cfg;
}

TEST(SystemConfig, BaselineModeEnablesTransferValidation) {
  // The PyG baseline keeps the blocking sparse-tensor assertions (4.3);
  // SALIENT skips them. The System wires this from the execution mode.
  SystemConfig cfg = small_cfg();
  cfg.execution = ExecutionMode::kBlocking;
  cfg.loader_kind = LoaderKind::kBaseline;
  System baseline(cfg);
  EXPECT_TRUE(baseline.device().config().validate_sparse_after_transfer);

  cfg = small_cfg();
  System pipelined(cfg);
  EXPECT_FALSE(pipelined.device().config().validate_sparse_after_transfer);
}

TEST(SystemConfig, FeatureCachePropagatesToTrainer) {
  SystemConfig cfg = small_cfg();
  cfg.feature_cache_nodes = 100;
  System sys(cfg);
  ASSERT_NE(sys.trainer().feature_cache(), nullptr);
  EXPECT_EQ(sys.trainer().feature_cache()->capacity(), 100);
  sys.train_epoch();  // cached path end to end
  SystemConfig no_cache = small_cfg();
  System plain(no_cache);
  EXPECT_EQ(plain.trainer().feature_cache(), nullptr);
}

TEST(SystemConfig, RejectsUnknownDatasetAndArch) {
  SystemConfig cfg = small_cfg();
  cfg.dataset = "reddit";
  EXPECT_THROW(System{cfg}, std::invalid_argument);
  cfg = small_cfg();
  cfg.arch = "transformer";
  EXPECT_THROW(System{cfg}, std::invalid_argument);
}

TEST(System, ModelDepthMustMatchFanoutDepth) {
  // A 2-layer model fed a 3-level MFG must fail loudly, not silently.
  SystemConfig cfg = small_cfg();
  System sys(cfg);
  FastSampler sampler(sys.dataset().graph, {3, 3, 3});
  std::vector<NodeId> batch{0, 1, 2};
  Mfg mfg = sampler.sample(batch, 1);
  Tensor x = Tensor::uniform({mfg.num_input_nodes(),
                              sys.dataset().feature_dim},
                             1, -1, 1);
  EXPECT_THROW(sys.model()->forward(Variable(x), mfg),
               std::invalid_argument);
}

TEST(System, EpochSeedsAdvance) {
  // Two epochs must not replay identical batches (epoch seed advances):
  // compare per-epoch mean loss trajectories under frozen LR 0 — identical
  // sampling would give identical loss.
  SystemConfig cfg = small_cfg();
  cfg.lr = 0.0;  // no parameter movement: loss differences come from batches
  System sys(cfg);
  const double l0 = sys.train_epoch().mean_loss;
  const double l1 = sys.train_epoch().mean_loss;
  EXPECT_NE(l0, l1);
}

TEST(System, StatsAreInternallyConsistent) {
  SystemConfig cfg = small_cfg();
  System sys(cfg);
  const EpochStats s = sys.train_epoch();
  EXPECT_GT(s.epoch_seconds, 0.0);
  EXPECT_GE(s.epoch_seconds + 1e-6, s.blocking.grand_total() * 0.5);
  EXPECT_EQ(s.num_batches,
            static_cast<std::int64_t>(
                (sys.dataset().train_idx.size() + 255) / 256));
  EXPECT_GT(s.transfer_bytes,
            static_cast<std::size_t>(s.num_batches));  // nonzero per batch
  EXPECT_NE(s.summary().find("epoch 0"), std::string::npos);
}

}  // namespace
}  // namespace salient
