// Device-simulator tests: stream FIFO ordering, event semantics,
// cross-stream synchronization, DMA data integrity + bandwidth modelling,
// and full PreparedBatch transfer correctness (f16 -> f32 conversion).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "device/device_sim.h"
#include "util/timer.h"
#include "device/dma.h"
#include "device/stream.h"
#include "graph/dataset.h"
#include "prep/slicing.h"
#include "sampling/fast_sampler.h"

namespace salient {
namespace {

TEST(Stream, ExecutesInFifoOrder) {
  Stream s("t");
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 100; ++i) {
    s.enqueue([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  s.synchronize();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Stream, SynchronizeWaitsForEnqueuedWork) {
  Stream s("t");
  std::atomic<bool> done{false};
  s.enqueue([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    done = true;
  });
  s.synchronize();
  EXPECT_TRUE(done.load());
  EXPECT_GT(s.busy_seconds(), 0.0);
}

TEST(Event, QueryAndSynchronize) {
  Stream s("t");
  std::atomic<bool> gate{false};
  s.enqueue([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  Event e = s.record();
  EXPECT_FALSE(e.query());
  gate = true;
  e.synchronize();
  EXPECT_TRUE(e.query());
}

TEST(Stream, CrossStreamWaitOrdersWork) {
  // compute must not run its kernel until copy's event fired.
  Stream copy("copy"), compute("compute");
  std::atomic<int> stage{0};
  copy.enqueue([&stage] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stage = 1;
  });
  Event copied = copy.record();
  compute.wait(copied);
  int observed = -1;
  compute.enqueue([&stage, &observed] { observed = stage.load(); });
  compute.synchronize();
  EXPECT_EQ(observed, 1);
}

TEST(Dma, CopiesBytesAndTracksThroughput) {
  DmaConfig cfg;
  cfg.bandwidth_gb_per_s = 1.0;  // 1 GB/s so timing is observable
  cfg.latency_us = 0;
  std::vector<char> src(1 << 20, 'x');
  std::vector<char> dst(1 << 20, 0);
  {
    DmaEngine dma(cfg);
    WallTimer t;
    dma.copy(dst.data(), src.data(), src.size(), /*pinned=*/true);
    // 1MB at 1GB/s: ~1ms minimum (oversleep only makes this larger)
    EXPECT_GE(t.seconds(), 0.0009);
    EXPECT_EQ(dst, src);
    EXPECT_EQ(dma.bytes_transferred(), src.size());
  }
  // The achieved-throughput accounting is wall-clock sensitive: a loaded
  // machine can oversleep the modelled wait by milliseconds. Take the best
  // of a few fresh-engine trials before judging the model.
  double best = 0;
  for (int trial = 0; trial < 5 && std::abs(best - 1.0) > 0.35; ++trial) {
    DmaEngine dma(cfg);
    dma.copy(dst.data(), src.data(), src.size(), /*pinned=*/true);
    if (std::abs(dma.achieved_gb_per_s() - 1.0) < std::abs(best - 1.0)) {
      best = dma.achieved_gb_per_s();
    }
  }
  EXPECT_NEAR(best, 1.0, 0.35);
}

TEST(Dma, PageablePenaltySlowsTransfer) {
  DmaConfig cfg;
  cfg.bandwidth_gb_per_s = 2.0;
  cfg.pageable_fraction = 0.5;
  cfg.latency_us = 0;
  DmaEngine dma(cfg);
  std::vector<char> buf(1 << 20), out(1 << 20);
  // Each copy's wall time is model time + scheduler noise (the modelled wait
  // can oversleep by milliseconds on a loaded core). min-of-N approximates
  // the model, making the pinned/pageable ratio robust to that noise.
  double pinned_s = 1e9, pageable_s = 1e9;
  for (int trial = 0; trial < 5; ++trial) {
    WallTimer t;
    dma.copy(out.data(), buf.data(), buf.size(), /*pinned=*/true);
    pinned_s = std::min(pinned_s, t.seconds());
    t.reset();
    dma.copy(out.data(), buf.data(), buf.size(), /*pinned=*/false);
    pageable_s = std::min(pageable_s, t.seconds());
  }
  EXPECT_GT(pageable_s, pinned_s * 1.5);
}

TEST(Dma, RoundTripCostsModelledTime) {
  DmaConfig cfg;
  cfg.round_trip_us = 500;
  DmaEngine dma(cfg);
  WallTimer t;
  dma.round_trip();
  EXPECT_GE(t.seconds(), 450e-6);
}

Dataset& dev_dataset() {
  static Dataset ds = [] {
    DatasetConfig c;
    c.name = "device-test";
    c.num_nodes = 2000;
    c.feature_dim = 16;
    c.num_classes = 4;
    c.avg_degree = 6;
    c.seed = 5;
    return generate_dataset(c);
  }();
  return ds;
}

PreparedBatch make_batch(const Dataset& ds) {
  FastSampler sampler(ds.graph, {4, 3});
  std::vector<NodeId> nodes{1, 3, 5, 7, 9, 11, 13, 15};
  PreparedBatch b;
  b.index = 0;
  b.mfg = sampler.sample(nodes, 77);
  b.x = Tensor({b.mfg.num_input_nodes(), ds.feature_dim}, DType::kF16,
               /*pinned=*/true);
  slice_rows_serial(ds.features, b.mfg.n_ids, b.x);
  b.y = Tensor({b.mfg.batch_size}, DType::kI64, /*pinned=*/true);
  slice_labels(ds.labels,
               {b.mfg.n_ids.data(), static_cast<std::size_t>(b.mfg.batch_size)},
               b.y);
  return b;
}

TEST(DeviceSim, BlockingTransferDeliversExactData) {
  const Dataset& ds = dev_dataset();
  PreparedBatch batch = make_batch(ds);
  DeviceConfig cfg;
  cfg.dma.bandwidth_gb_per_s = 50.0;  // fast for tests
  DeviceSim dev(cfg);
  DeviceBatch d = dev.transfer_batch(batch, /*blocking=*/true, nullptr);

  // adjacency arrays copied exactly
  ASSERT_EQ(d.mfg.levels.size(), batch.mfg.levels.size());
  for (std::size_t i = 0; i < d.mfg.levels.size(); ++i) {
    EXPECT_EQ(*d.mfg.levels[i].indptr, *batch.mfg.levels[i].indptr);
    EXPECT_EQ(*d.mfg.levels[i].indices, *batch.mfg.levels[i].indices);
  }
  // features converted to f32 on the compute stream
  ASSERT_EQ(d.x_f32.dtype(), DType::kF32);
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < ds.feature_dim; ++j) {
      EXPECT_FLOAT_EQ(d.x_f32.at<float>(i, j),
                      half_to_float(batch.x.at<Half>(i, j)));
    }
  }
  // labels copied
  EXPECT_TRUE(allclose(d.y, batch.y.clone()));
  EXPECT_GT(dev.dma().bytes_transferred(), 0u);
}

TEST(DeviceSim, NonBlockingTransferSignalsReadyEvent) {
  const Dataset& ds = dev_dataset();
  PreparedBatch batch = make_batch(ds);
  DeviceSim dev;
  Event ready;
  DeviceBatch d = dev.transfer_batch(batch, /*blocking=*/false, &ready);
  ready.synchronize();
  EXPECT_EQ(*d.mfg.levels[0].indices, *batch.mfg.levels[0].indices);
  EXPECT_EQ(d.x_f32.size(0), batch.x.size(0));
}

TEST(DeviceSim, ValidationModeRunsRoundTrips) {
  const Dataset& ds = dev_dataset();
  PreparedBatch batch = make_batch(ds);
  DeviceConfig with, without;
  with.validate_sparse_after_transfer = true;
  with.dma.round_trip_us = 2000;  // exaggerated for measurability
  without.validate_sparse_after_transfer = false;
  without.dma.round_trip_us = 2000;

  DeviceSim dev_with(with), dev_without(without);
  WallTimer t;
  dev_with.transfer_batch(batch, true, nullptr);
  const double slow = t.seconds();
  t.reset();
  dev_without.transfer_batch(batch, true, nullptr);
  const double fast = t.seconds();
  // two MFG levels * 2ms round trips must be visible
  EXPECT_GT(slow, fast + 0.003);
}

TEST(DeviceSim, PipelinedTransfersOverlapWithCompute) {
  // Enqueue a long compute kernel, then a transfer; with separate streams
  // the transfer must complete well before the kernel finishes.
  DeviceSim dev;
  std::atomic<bool> kernel_done{false};
  dev.compute_stream().enqueue([&kernel_done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    kernel_done = true;
  });
  std::atomic<bool> copy_done{false};
  dev.copy_stream().enqueue([&copy_done] { copy_done = true; });
  Event e = dev.copy_stream().record();
  e.synchronize();
  EXPECT_TRUE(copy_done.load());
  EXPECT_FALSE(kernel_done.load());  // compute still busy: overlap achieved
  dev.compute_stream().synchronize();
}

}  // namespace
}  // namespace salient
