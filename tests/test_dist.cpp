// Distributed-training tests: ring all-reduce correctness under various
// world sizes and buffer lengths (TEST_P), and the DDP invariants — replicas
// stay bit-identical, training distributes the epoch, loss decreases.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "dist/allreduce.h"
#include "dist/ddp.h"
#include "graph/dataset.h"
#include "train/inference.h"

namespace salient {
namespace {

class AllreduceTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(AllreduceTest, ComputesElementwiseMean) {
  const auto [world, n] = GetParam();
  std::vector<std::vector<float>> buffers(static_cast<std::size_t>(world));
  std::vector<std::vector<float>> expected_sum(1, std::vector<float>(n, 0));
  for (int r = 0; r < world; ++r) {
    auto& buf = buffers[static_cast<std::size_t>(r)];
    buf.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      buf[i] = static_cast<float>((r + 1) * 100 + static_cast<int>(i % 17));
      expected_sum[0][i] += buf[i];
    }
  }
  RingAllreduce ar(world);
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      ar.run(r, buffers[static_cast<std::size_t>(r)]);
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(buffers[static_cast<std::size_t>(r)][i],
                  expected_sum[0][i] / static_cast<float>(world), 1e-3)
          << "rank " << r << " index " << i;
    }
  }
  // all ranks hold bitwise-identical results (required for DDP sync)
  for (int r = 1; r < world; ++r) {
    ASSERT_EQ(buffers[static_cast<std::size_t>(r)], buffers[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorldSizesAndLengths, AllreduceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7),
                       ::testing::Values<std::size_t>(1, 5, 64, 1000)));

TEST(Allreduce, RepeatedRoundsStayConsistent) {
  constexpr int kWorld = 3;
  RingAllreduce ar(kWorld);
  std::vector<std::vector<float>> buffers(kWorld,
                                          std::vector<float>(10, 1.0f));
  for (int round = 0; round < 5; ++round) {
    std::vector<std::thread> threads;
    for (int r = 0; r < kWorld; ++r) {
      threads.emplace_back([&, r] {
        ar.run(r, buffers[static_cast<std::size_t>(r)]);
      });
    }
    for (auto& t : threads) t.join();
    for (int r = 0; r < kWorld; ++r) {
      for (float v : buffers[static_cast<std::size_t>(r)]) {
        ASSERT_FLOAT_EQ(v, 1.0f);  // mean of equal values is unchanged
      }
    }
  }
}

Dataset& ddp_dataset() {
  static Dataset ds = [] {
    DatasetConfig c;
    c.name = "ddp-test";
    c.num_nodes = 5000;
    c.feature_dim = 16;
    c.num_classes = 4;
    c.avg_degree = 8;
    c.p_in = 0.85;
    c.seed = 13;
    c.train_frac = 0.6;
    c.val_frac = 0.1;
    c.test_frac = 0.3;
    return generate_dataset(c);
  }();
  return ds;
}

DdpConfig ddp_config(int world) {
  const Dataset& ds = ddp_dataset();
  DdpConfig cfg;
  cfg.world_size = world;
  cfg.arch = "sage";
  cfg.model.in_channels = ds.feature_dim;
  cfg.model.hidden_channels = 24;
  cfg.model.out_channels = ds.num_classes;
  cfg.model.num_layers = 2;
  cfg.model.seed = 3;
  cfg.loader.batch_size = 128;
  cfg.loader.fanouts = {6, 4};
  cfg.loader.seed = 17;
  cfg.lr = 5e-3;
  return cfg;
}

TEST(Ddp, ReplicasStartAndStayInSync) {
  DdpTrainer trainer(ddp_dataset(), ddp_config(3));
  EXPECT_TRUE(trainer.replicas_in_sync());  // identical init
  auto r = trainer.train_epoch(0);
  EXPECT_TRUE(trainer.replicas_in_sync()) << "diverged after epoch";
  EXPECT_GT(r.batches_per_replica, 0);
  EXPECT_TRUE(std::isfinite(r.mean_loss));
}

TEST(Ddp, ShardsEpochAcrossReplicas) {
  DdpTrainer t1(ddp_dataset(), ddp_config(1));
  DdpTrainer t4(ddp_dataset(), ddp_config(4));
  const auto r1 = t1.train_epoch(0);
  const auto r4 = t4.train_epoch(0);
  // 4 replicas each process ~1/4 the batches of the single replica.
  EXPECT_NEAR(static_cast<double>(r4.batches_per_replica),
              static_cast<double>(r1.batches_per_replica) / 4.0, 1.0);
}

TEST(Ddp, TrainingConvergesWithMultipleReplicas) {
  DdpTrainer trainer(ddp_dataset(), ddp_config(2));
  const auto first = trainer.train_epoch(0);
  DdpEpochResult last{};
  for (int e = 1; e < 5; ++e) last = trainer.train_epoch(e);
  EXPECT_LT(last.mean_loss, first.mean_loss);
  EXPECT_TRUE(trainer.replicas_in_sync());

  // replica 0's model predicts better than chance
  const std::vector<std::int64_t> fanouts{8, 8};
  auto acc = evaluate_sampled(*trainer.replica(0), ddp_dataset(),
                              ddp_dataset().test_idx, fanouts, 256, 5)
                 .accuracy;
  EXPECT_GT(acc, 0.45);  // chance = 0.25
}

TEST(Ddp, RejectsBadConfig) {
  EXPECT_THROW(DdpTrainer(ddp_dataset(), [&] {
                 auto c = ddp_config(0);
                 return c;
               }()),
               std::invalid_argument);
}

}  // namespace
}  // namespace salient
