// Tests for the paper's §8 future-work extensions implemented in this repo:
// device feature caching (GNS-style), streaming graph partitioning (LDG) +
// distributed-sampling communication metrics, and model checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "device/device_sim.h"
#include "prep/feature_cache.h"
#include "graph/partition.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "prep/slicing.h"
#include "sampling/distributed.h"
#include "sampling/fast_sampler.h"
#include "tensor/ops.h"

namespace salient {
namespace {

Dataset& ext_dataset() {
  static Dataset ds = [] {
    DatasetConfig c;
    c.name = "ext-test";
    c.num_nodes = 8000;
    c.feature_dim = 20;
    c.num_classes = 5;
    c.avg_degree = 12;
    c.max_degree = 800;
    c.seed = 31;
    return generate_dataset(c);
  }();
  return ds;
}

// --- feature cache ----------------------------------------------------------

TEST(FeatureCache, CachesHighestDegreeNodesExactly) {
  const Dataset& ds = ext_dataset();
  FeatureCache cache(ds, 500);
  EXPECT_EQ(cache.capacity(), 500);
  EXPECT_EQ(cache.features().size(0), 500);
  EXPECT_EQ(cache.features().dtype(), DType::kF32);
  // Every cached node's degree >= every uncached node's degree (allowing
  // ties at the boundary), and cached features match the host store.
  std::int64_t min_cached_degree = 1 << 30;
  for (NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    const std::int64_t slot = cache.slot_of(v);
    if (slot < 0) continue;
    min_cached_degree = std::min(min_cached_degree, ds.graph.degree(v));
    for (std::int64_t j = 0; j < ds.feature_dim; ++j) {
      EXPECT_FLOAT_EQ(cache.features().at<float>(slot, j),
                      half_to_float(ds.features.at<Half>(v, j)));
    }
  }
  std::int64_t violations = 0;
  for (NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    if (cache.slot_of(v) < 0 && ds.graph.degree(v) > min_cached_degree) {
      ++violations;
    }
  }
  EXPECT_EQ(violations, 0);
}

TEST(FeatureCache, HitRateExceedsCapacityFraction) {
  // Degree-biased sampling makes hub nodes far more likely to appear in an
  // MFG than uniform: a 5% cache should serve >> 5% of input rows.
  // One hop keeps the frontier small so the degree bias is not flattened by
  // whole-graph coverage (input node sets are deduplicated).
  const Dataset& ds = ext_dataset();
  FeatureCache cache(ds, ds.graph.num_nodes() / 20);  // 5%
  FastSampler sampler(ds.graph, {10});
  std::vector<NodeId> batch(ds.train_idx.begin(), ds.train_idx.begin() + 128);
  Mfg mfg = sampler.sample(batch, 9);
  CachePlan plan = plan_cached_batch(mfg, cache);
  EXPECT_EQ(plan.from_cache.size(), mfg.n_ids.size());
  EXPECT_GT(plan.hit_rate(), 0.10);  // >2x the capacity fraction
  EXPECT_LT(plan.hit_rate(), 1.0);
}

TEST(FeatureCache, CachedTransferMatchesUncachedBitExactly) {
  const Dataset& ds = ext_dataset();
  FeatureCache cache(ds, 1000);
  FastSampler sampler(ds.graph, {6, 4});
  std::vector<NodeId> nodes(ds.train_idx.begin(), ds.train_idx.begin() + 64);

  PreparedBatch full;
  full.index = 0;
  full.mfg = sampler.sample(nodes, 77);
  full.x = Tensor({full.mfg.num_input_nodes(), ds.feature_dim}, DType::kF16,
                  true);
  slice_rows_serial(ds.features, full.mfg.n_ids, full.x);
  full.y = Tensor({full.mfg.batch_size}, DType::kI64, true);
  slice_labels(ds.labels,
               {full.mfg.n_ids.data(),
                static_cast<std::size_t>(full.mfg.batch_size)},
               full.y);

  // Cached variant: same MFG, x holds only the missing rows.
  CachePlan plan = plan_cached_batch(full.mfg, cache);
  PreparedBatch cached;
  cached.index = 0;
  cached.mfg = full.mfg;
  cached.x = Tensor({plan.num_missing, ds.feature_dim}, DType::kF16, true);
  slice_missing_rows(ds, full.mfg, plan, cached.x);
  cached.y = full.y;

  DeviceSim dev;
  DeviceBatch a = dev.transfer_batch(full, true, nullptr);
  const std::size_t bytes_before = dev.dma().bytes_transferred();
  DeviceBatch b = dev.transfer_batch_cached(cached, plan, cache, true,
                                            nullptr);
  const std::size_t cached_bytes =
      dev.dma().bytes_transferred() - bytes_before;

  EXPECT_TRUE(allclose(a.x_f32, b.x_f32, 0.0, 0.0));  // bit-identical
  EXPECT_TRUE(allclose(a.y, b.y));
  // The cached transfer moved strictly fewer feature bytes.
  EXPECT_LT(cached.x.nbytes(), full.x.nbytes());
  EXPECT_LT(cached_bytes, bytes_before);
}

TEST(FeatureCache, ZeroCapacityAlwaysMisses) {
  const Dataset& ds = ext_dataset();
  FeatureCache cache(ds, 0);
  FastSampler sampler(ds.graph, {4});
  std::vector<NodeId> nodes{1, 2, 3};
  Mfg mfg = sampler.sample(nodes, 3);
  CachePlan plan = plan_cached_batch(mfg, cache);
  EXPECT_EQ(plan.num_missing,
            static_cast<std::int64_t>(mfg.n_ids.size()));
  EXPECT_DOUBLE_EQ(plan.hit_rate(), 0.0);
}

TEST(FeatureCache, TransferValidatesPlan) {
  const Dataset& ds = ext_dataset();
  FeatureCache cache(ds, 100);
  FastSampler sampler(ds.graph, {4});
  std::vector<NodeId> nodes{1, 2, 3, 4};
  PreparedBatch batch;
  batch.mfg = sampler.sample(nodes, 3);
  CachePlan plan = plan_cached_batch(batch.mfg, cache);
  batch.x = Tensor({plan.num_missing + 5, ds.feature_dim}, DType::kF16);
  batch.y = Tensor({batch.mfg.batch_size}, DType::kI64);
  DeviceSim dev;
  EXPECT_THROW(dev.transfer_batch_cached(batch, plan, cache, true, nullptr),
               std::invalid_argument);
}

// --- partitioning ------------------------------------------------------------

TEST(Partition, RandomIsBalancedAndComplete) {
  const Dataset& ds = ext_dataset();
  GraphPartition p = partition_random(ds.graph, 4, 5);
  ASSERT_EQ(p.assignment.size(),
            static_cast<std::size_t>(ds.graph.num_nodes()));
  for (const auto a : p.assignment) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, 4);
  }
  EXPECT_LT(balance_factor(p), 1.1);
  // Random 4-way cut of any graph: ~75% of edges cross.
  EXPECT_NEAR(edge_cut_fraction(ds.graph, p), 0.75, 0.05);
}

TEST(Partition, LdgBeatsRandomOnEdgeCut) {
  const Dataset& ds = ext_dataset();
  GraphPartition random = partition_random(ds.graph, 4, 7);
  GraphPartition ldg = partition_ldg(ds.graph, 4, 1.05);
  EXPECT_LE(balance_factor(ldg), 1.06);
  const double cut_random = edge_cut_fraction(ds.graph, random);
  const double cut_ldg = edge_cut_fraction(ds.graph, ldg);
  EXPECT_LT(cut_ldg, cut_random * 0.9)
      << "LDG " << cut_ldg << " vs random " << cut_random;
}

TEST(Partition, RejectsBadArguments) {
  const Dataset& ds = ext_dataset();
  EXPECT_THROW(partition_random(ds.graph, 0, 1), std::invalid_argument);
  EXPECT_THROW(partition_ldg(ds.graph, 2, 0.5), std::invalid_argument);
  GraphPartition wrong;
  wrong.num_parts = 2;
  wrong.assignment = {0, 1};
  EXPECT_THROW(edge_cut_fraction(ds.graph, wrong), std::invalid_argument);
}

TEST(Partition, SamplingCommunicationFollowsEdgeCut) {
  const Dataset& ds = ext_dataset();
  GraphPartition random = partition_random(ds.graph, 4, 11);
  GraphPartition ldg = partition_ldg(ds.graph, 4);
  const std::vector<std::int64_t> fanouts{8, 6};
  const double comm_random = estimate_sampling_comm_fraction(
      ds.graph, random, ds.train_idx, fanouts, 256, 4, 13);
  const double comm_ldg = estimate_sampling_comm_fraction(
      ds.graph, ldg, ds.train_idx, fanouts, 256, 4, 13);
  EXPECT_GT(comm_random, 0.6);  // ~3/4 cross under random 4-way
  EXPECT_LT(comm_ldg, comm_random);
  // the MFG metric agrees with a direct per-MFG computation
  FastSampler sampler(ds.graph, {8, 6});
  std::vector<NodeId> b(ds.train_idx.begin(), ds.train_idx.begin() + 128);
  Mfg mfg = sampler.sample(b, 17);
  const double f = mfg_cross_partition_fraction(mfg, ldg);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

TEST(Partition, SinglePartHasNoCut) {
  const Dataset& ds = ext_dataset();
  GraphPartition p = partition_ldg(ds.graph, 1);
  EXPECT_DOUBLE_EQ(edge_cut_fraction(ds.graph, p), 0.0);
  EXPECT_DOUBLE_EQ(balance_factor(p), 1.0);
}

// --- checkpointing -------------------------------------------------------------

TEST(Checkpoint, RoundTripsAllArchitectures) {
  const Dataset& ds = ext_dataset();
  for (const char* arch : {"sage", "gat", "gin", "sage-ri"}) {
    nn::ModelConfig mc;
    mc.in_channels = ds.feature_dim;
    mc.hidden_channels = 16;
    mc.out_channels = ds.num_classes;
    mc.num_layers = 2;
    mc.seed = 5;
    auto original = nn::make_model(arch, mc);
    // Perturb away from init so the round trip is meaningful.
    for (auto& p : original->parameters()) {
      ops::axpy_(p.data(), Tensor::uniform(p.data().shape(), 3, -1, 1), 0.5);
    }
    const std::string path =
        std::string("/tmp/salient_ckpt_") + arch + ".bin";
    nn::save_checkpoint(*original, path);

    mc.seed = 999;  // different init on the receiving side
    auto restored = nn::make_model(arch, mc);
    nn::load_checkpoint(*restored, path);
    const auto pa = original->parameters();
    const auto pb = restored->parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_TRUE(allclose(pa[i].data(), pb[i].data(), 0.0, 0.0))
          << arch << " parameter " << i;
    }
    std::remove(path.c_str());
  }
}

TEST(Checkpoint, RestoresBatchNormRunningStats) {
  nn::BatchNorm1d bn(3);
  bn.train(true);
  for (int i = 0; i < 50; ++i) {
    bn.forward(Variable(Tensor::uniform({8, 3}, 10 + i, 2.0, 4.0)));
  }
  nn::save_checkpoint(bn, "/tmp/salient_ckpt_bn.bin");
  nn::BatchNorm1d fresh(3);
  nn::load_checkpoint(fresh, "/tmp/salient_ckpt_bn.bin");
  EXPECT_TRUE(allclose(fresh.running_mean(), bn.running_mean(), 0.0, 0.0));
  EXPECT_TRUE(allclose(fresh.running_var(), bn.running_var(), 0.0, 0.0));
  std::remove("/tmp/salient_ckpt_bn.bin");
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  nn::Linear a(4, 5), b(4, 6);
  nn::save_checkpoint(a, "/tmp/salient_ckpt_mismatch.bin");
  EXPECT_THROW(nn::load_checkpoint(b, "/tmp/salient_ckpt_mismatch.bin"),
               std::runtime_error);
  EXPECT_THROW(nn::load_checkpoint(a, "/tmp/salient_ckpt_missing.bin"),
               std::runtime_error);
  std::remove("/tmp/salient_ckpt_mismatch.bin");
}

TEST(Checkpoint, RejectsCorruptedFile) {
  nn::Linear a(3, 3);
  nn::save_checkpoint(a, "/tmp/salient_ckpt_trunc.bin");
  // Truncate the file.
  {
    std::ifstream in("/tmp/salient_ckpt_trunc.bin", std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out("/tmp/salient_ckpt_trunc.bin",
                      std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_THROW(nn::load_checkpoint(a, "/tmp/salient_ckpt_trunc.bin"),
               std::runtime_error);
  std::remove("/tmp/salient_ckpt_trunc.bin");
}

}  // namespace
}  // namespace salient
