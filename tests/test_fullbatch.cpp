// Tests for the SAGE aggregator variants (§2.1 mean/max/pooling), the
// weighted/max SpMM kernels, GCN over the normalized adjacency, and the
// full-batch trainer (the Table 7 comparison baseline).
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/functions.h"
#include "autograd/gradcheck.h"
#include "graph/builder.h"
#include "graph/dataset.h"
#include "nn/gcn_conv.h"
#include "nn/loss.h"
#include "nn/sage_conv.h"
#include "train/full_batch.h"
#include "tensor/ops.h"

namespace salient {
namespace {

namespace ag = autograd;

// --- weighted / max SpMM kernels -------------------------------------------------

TEST(SpmmWeighted, MatchesManualComputation) {
  std::vector<std::int64_t> indptr{0, 2, 3};
  std::vector<std::int64_t> indices{0, 1, 0};
  std::vector<double> weights{0.5, 2.0, 3.0};
  Tensor x = Tensor::from_vector<float>({1, 2, 3, 4}, {2, 2});
  Tensor y = ops::spmm_weighted(indptr, indices, weights, x, 2);
  // dst0 = 0.5*(1,2) + 2*(3,4) = (6.5, 9); dst1 = 3*(1,2) = (3,6)
  EXPECT_TRUE(allclose(y, Tensor::from_vector<float>({6.5f, 9, 3, 6},
                                                     {2, 2})));
  std::vector<double> bad{1.0};
  EXPECT_THROW(ops::spmm_weighted(indptr, indices, bad, x, 2),
               std::invalid_argument);
}

TEST(SpmmMax, ElementwiseMaxWithArgmax) {
  std::vector<std::int64_t> indptr{0, 2, 2, 3};
  std::vector<std::int64_t> indices{0, 1, 1};
  Tensor x = Tensor::from_vector<float>({1, 9, 5, 2}, {2, 2});
  std::vector<std::int64_t> argmax;
  Tensor y = ops::spmm_max(indptr, indices, x, 3, &argmax);
  // dst0 = max((1,9),(5,2)) = (5,9); dst1 empty = (0,0); dst2 = (5,2)
  EXPECT_TRUE(allclose(
      y, Tensor::from_vector<float>({5, 9, 0, 0, 5, 2}, {3, 2})));
  EXPECT_EQ(argmax[0], 1);  // dst0 col0 came from src1
  EXPECT_EQ(argmax[1], 0);  // dst0 col1 came from src0
  EXPECT_EQ(argmax[2], -1);  // empty row
  EXPECT_EQ(argmax[4], 1);
}

TEST(Gradcheck, SpmmWeightedAndMax) {
  auto indptr = std::make_shared<const std::vector<std::int64_t>>(
      std::vector<std::int64_t>{0, 2, 3, 3});
  auto indices = std::make_shared<const std::vector<std::int64_t>>(
      std::vector<std::int64_t>{0, 3, 1});
  auto weights = std::make_shared<const std::vector<double>>(
      std::vector<double>{0.3, 1.7, -0.4});
  {
    auto fn = [&](const std::vector<Variable>& in) {
      Variable y = ag::spmm_weighted(indptr, indices, weights, in[0], 3);
      return ag::nll_loss(ag::log_softmax(y),
                          Tensor::from_vector<std::int64_t>({0, 1, 1}, {3}));
    };
    auto r = ag::gradcheck(
        fn, {Variable(Tensor::uniform({4, 2}, 2, -1, 1, DType::kF64), true)});
    EXPECT_TRUE(r.ok) << r.message;
  }
  {
    // Max is piecewise-linear: keep entries well separated so the finite
    // difference never crosses an argmax switch.
    auto fn = [&](const std::vector<Variable>& in) {
      Variable y = ag::spmm_max(indptr, indices, in[0], 3);
      return ag::nll_loss(ag::log_softmax(y),
                          Tensor::from_vector<std::int64_t>({0, 1, 1}, {3}));
    };
    Variable x(Tensor::from_vector<double>(
                   {0.1, 1.0, -0.7, 0.4, 2.0, -1.5, 0.9, -0.2}, {4, 2}),
               true);
    auto r = ag::gradcheck(fn, {x});
    EXPECT_TRUE(r.ok) << r.message;
  }
}

// --- SAGE aggregator variants ------------------------------------------------------

MfgLevel tiny_level() {
  MfgLevel level;
  level.num_src = 4;
  level.num_dst = 2;
  level.indptr = std::make_shared<std::vector<std::int64_t>>(
      std::vector<std::int64_t>{0, 2, 4});
  level.indices = std::make_shared<std::vector<std::int64_t>>(
      std::vector<std::int64_t>{1, 2, 0, 3});
  return level;
}

TEST(SageAggregators, AllVariantsProduceGradientsAndDiffer) {
  MfgLevel level = tiny_level();
  Tensor x = Tensor::uniform({4, 3}, 33, -1, 1);
  std::vector<Tensor> outputs;
  for (const auto agg : {nn::SageAggregator::kMean, nn::SageAggregator::kMax,
                         nn::SageAggregator::kPool}) {
    nn::SageConv conv(3, 4, false, 11, agg);
    EXPECT_EQ(conv.aggregator(), agg);
    Variable out = conv.forward(Variable(x, true), level);
    EXPECT_EQ(out.data().size(0), 2);
    EXPECT_EQ(out.data().size(1), 4);
    Variable loss = nn::nll_loss(
        nn::log_softmax(out), Tensor::from_vector<std::int64_t>({0, 1}, {2}));
    conv.zero_grad();
    loss.backward();
    for (const auto& p : conv.parameters()) {
      EXPECT_TRUE(p.grad().defined());
    }
    outputs.push_back(out.data());
  }
  // distinct aggregators give distinct outputs (same seeds otherwise)
  EXPECT_FALSE(allclose(outputs[0], outputs[1], 1e-3, 1e-3));
  EXPECT_FALSE(allclose(outputs[1], outputs[2], 1e-3, 1e-3));
  // pool variant registers the extra pre-pooling linear
  nn::SageConv pool(3, 4, false, 11, nn::SageAggregator::kPool);
  nn::SageConv mean(3, 4, false, 11, nn::SageAggregator::kMean);
  EXPECT_GT(pool.num_parameters(), mean.num_parameters());
}

// --- GCN / normalized adjacency --------------------------------------------------------

TEST(Gcn, NormalizedAdjacencyRowsAreProper) {
  Dataset ds = generate_dataset([] {
    DatasetConfig c;
    c.num_nodes = 500;
    c.feature_dim = 8;
    c.num_classes = 3;
    c.avg_degree = 6;
    c.seed = 3;
    return c;
  }());
  nn::NormalizedAdjacency adj = nn::normalize_adjacency(ds.graph);
  EXPECT_EQ(adj.num_nodes, 500);
  ASSERT_EQ(adj.indptr->size(), 501u);
  ASSERT_EQ(adj.indices->size(), adj.weights->size());
  // Every row contains the self loop, weights positive, and the symmetric
  // normalization bound w <= 1 holds.
  for (NodeId v = 0; v < 500; ++v) {
    bool self = false;
    for (std::int64_t e = (*adj.indptr)[static_cast<std::size_t>(v)];
         e < (*adj.indptr)[static_cast<std::size_t>(v) + 1]; ++e) {
      self |= ((*adj.indices)[static_cast<std::size_t>(e)] == v);
      ASSERT_GT((*adj.weights)[static_cast<std::size_t>(e)], 0.0);
      ASSERT_LE((*adj.weights)[static_cast<std::size_t>(e)], 1.0 + 1e-12);
    }
    ASSERT_TRUE(self) << "missing self loop at " << v;
  }
  // Ahat of a constant vector on a regular-ish graph stays near constant;
  // more precisely Ahat's largest eigenvalue is 1 with eigenvector D^1/2 1:
  // check Ahat (D^1/2 1) == D^1/2 1 exactly.
  Tensor d_half({500, 1}, DType::kF64);
  for (NodeId v = 0; v < 500; ++v) {
    d_half.at<double>(v, 0) =
        std::sqrt(static_cast<double>(ds.graph.degree(v)) + 1.0);
  }
  Tensor y = ops::spmm_weighted(*adj.indptr, *adj.indices, *adj.weights,
                                d_half, 500);
  EXPECT_TRUE(allclose(y, d_half, 1e-9, 1e-9));
}

TEST(FullBatch, GcnTrainsAboveChance) {
  DatasetConfig c;
  c.num_nodes = 3000;
  c.feature_dim = 16;
  c.num_classes = 4;
  c.avg_degree = 8;
  c.p_in = 0.85;
  c.feature_signal = 0.4;
  c.seed = 17;
  Dataset ds = generate_dataset(c);
  FullBatchConfig fc;
  fc.hidden_channels = 24;
  fc.lr = 2e-2;
  FullBatchGcnTrainer trainer(ds, fc);
  const EpochStats first = trainer.train_epoch(0);
  EpochStats last;
  for (int e = 1; e < 30; ++e) last = trainer.train_epoch(e);
  EXPECT_LT(last.mean_loss, first.mean_loss * 0.7);
  EXPECT_EQ(last.num_batches, 1);
  const double acc = trainer.accuracy(ds.test_idx);
  EXPECT_GT(acc, 0.55);  // chance = 0.25
  EXPECT_GT(trainer.activation_bytes(),
            static_cast<std::size_t>(3000) * 16 * 4);
}

TEST(FullBatch, ActivationMemoryScalesWithGraph) {
  // The §7 scalability argument: full-batch activation memory grows linearly
  // with |V| regardless of batch size, unlike mini-batch training.
  DatasetConfig small_cfg, big_cfg;
  small_cfg.num_nodes = 1000;
  big_cfg.num_nodes = 4000;
  for (auto* c : {&small_cfg, &big_cfg}) {
    c->feature_dim = 8;
    c->num_classes = 3;
    c->avg_degree = 5;
    c->seed = 23;
  }
  Dataset small = generate_dataset(small_cfg);
  Dataset big = generate_dataset(big_cfg);
  FullBatchConfig fc;
  EXPECT_NEAR(static_cast<double>(
                  FullBatchGcnTrainer(big, fc).activation_bytes()) /
                  static_cast<double>(
                      FullBatchGcnTrainer(small, fc).activation_bytes()),
              4.0, 0.01);
}

TEST(Gradcheck, GcnConvEndToEnd) {
  // Tiny 3-node path graph through the real normalized adjacency.
  EdgeList e;
  e.push(0, 1);
  e.push(1, 2);
  CsrGraph g = build_csr(3, e);
  nn::NormalizedAdjacency adj = nn::normalize_adjacency(g);
  auto fn = [&adj](const std::vector<Variable>& in) {
    Variable agg =
        ag::spmm_weighted(adj.indptr, adj.indices, adj.weights, in[0], 3);
    Variable y = ag::linear(agg, in[1], in[2]);
    return ag::nll_loss(ag::log_softmax(y),
                        Tensor::from_vector<std::int64_t>({0, 1, 0}, {3}));
  };
  auto r = ag::gradcheck(
      fn, {Variable(Tensor::uniform({3, 2}, 1, -1, 1, DType::kF64), true),
           Variable(Tensor::uniform({2, 2}, 2, -1, 1, DType::kF64), true),
           Variable(Tensor::uniform({2}, 3, -1, 1, DType::kF64), true)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(Gradcheck, GatherRows) {
  Tensor idx = Tensor::from_vector<std::int64_t>({2, 0, 2}, {3});
  auto fn = [&idx](const std::vector<Variable>& in) {
    Variable y = ag::gather_rows(in[0], idx);
    return ag::nll_loss(ag::log_softmax(y),
                        Tensor::from_vector<std::int64_t>({0, 1, 0}, {3}));
  };
  auto r = ag::gradcheck(
      fn, {Variable(Tensor::uniform({4, 3}, 5, -1, 1, DType::kF64), true)});
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace salient
