// Graph substrate tests: CSR invariants, COO->CSR building (symmetrize /
// dedup), generators (degree distribution, connectivity of SBM structure),
// and dataset presets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.h"

#include "graph/builder.h"
#include "graph/csr.h"
#include "graph/dataset.h"
#include "graph/generator.h"

namespace salient {
namespace {

TEST(Csr, ValidatesInvariants) {
  CsrGraph g(3, {0, 1, 2, 3}, {1, 2, 0});
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.neighbors(1)[0], 2);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 1.0);
  // broken: non-monotone indptr
  EXPECT_THROW(CsrGraph(2, {0, 2, 1}, {0, 1}), std::invalid_argument);
  // broken: out-of-range index
  EXPECT_THROW(CsrGraph(2, {0, 1, 2}, {0, 5}), std::invalid_argument);
}

TEST(Builder, SymmetrizeAndDedup) {
  EdgeList e;
  e.push(0, 1);
  e.push(0, 1);  // duplicate
  e.push(1, 2);
  e.push(2, 2);  // self loop
  CsrGraph g = build_csr(3, e, /*symmetrize=*/true, /*dedup=*/true);
  EXPECT_TRUE(g.valid());
  // After symmetrize+dedup: 0-1, 1-2 (self loop dropped)
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(2), 1);
  // rows sorted
  const auto nb = g.neighbors(1);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(Builder, DirectedNoDedupKeepsAll) {
  EdgeList e;
  e.push(0, 1);
  e.push(0, 1);
  CsrGraph g = build_csr(2, e, /*symmetrize=*/false, /*dedup=*/false);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(Builder, RejectsOutOfRangeNodes) {
  EdgeList e;
  e.push(0, 9);
  EXPECT_THROW(build_csr(3, e), std::out_of_range);
}

TEST(Builder, SymmetryProperty) {
  EdgeList e;
  Xoshiro256ss rng(5);
  for (int i = 0; i < 500; ++i) {
    e.push(static_cast<NodeId>(bounded_rand(rng, 100)),
           static_cast<NodeId>(bounded_rand(rng, 100)));
  }
  CsrGraph g = build_csr(100, e, true, true);
  // every edge must appear in both directions
  for (NodeId v = 0; v < 100; ++v) {
    for (const NodeId u : g.neighbors(v)) {
      const auto nb = g.neighbors(u);
      EXPECT_TRUE(std::binary_search(nb.begin(), nb.end(), v))
          << u << "->" << v;
    }
  }
}

TEST(Generator, ErdosRenyiSizeAndValidity) {
  CsrGraph g = erdos_renyi(1000, 8.0, 3);
  EXPECT_TRUE(g.valid());
  EXPECT_NEAR(g.avg_degree(), 8.0, 1.5);
}

TEST(Generator, PowerlawHasHeavyTail) {
  CsrGraph g = powerlaw_configuration(20000, 10.0, 2.3, 2000, 7);
  EXPECT_TRUE(g.valid());
  EXPECT_NEAR(g.avg_degree(), 10.0, 2.5);
  std::int64_t max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  // heavy tail: some hub far above the mean
  EXPECT_GT(max_deg, 100);
}

TEST(Generator, PowerlawDeterministicInSeed) {
  CsrGraph a = powerlaw_configuration(2000, 6.0, 2.5, 500, 11);
  CsrGraph b = powerlaw_configuration(2000, 6.0, 2.5, 500, 11);
  EXPECT_EQ(a.indptr(), b.indptr());
  EXPECT_EQ(a.indices(), b.indices());
  CsrGraph c = powerlaw_configuration(2000, 6.0, 2.5, 500, 12);
  EXPECT_NE(a.indices(), c.indices());
}

TEST(Generator, SbmHomophily) {
  SbmParams p;
  p.num_nodes = 20000;
  p.num_blocks = 8;
  p.avg_degree = 12;
  p.p_in = 0.8;
  p.seed = 9;
  SbmGraph sg = sbm_powerlaw(p);
  EXPECT_TRUE(sg.graph.valid());
  ASSERT_EQ(sg.block.size(), 20000u);
  // Majority of edges must be intra-community (homophily drives the GNN's
  // ability to denoise by aggregation).
  std::int64_t intra = 0, total = 0;
  for (NodeId v = 0; v < sg.graph.num_nodes(); ++v) {
    for (const NodeId u : sg.graph.neighbors(v)) {
      intra += (sg.block[static_cast<std::size_t>(u)] ==
                sg.block[static_cast<std::size_t>(v)]);
      ++total;
    }
  }
  const double frac = static_cast<double>(intra) / static_cast<double>(total);
  EXPECT_GT(frac, 0.6);
  EXPECT_LT(frac, 0.95);
}

TEST(Dataset, GenerateProducesConsistentPieces) {
  DatasetConfig c;
  c.num_nodes = 5000;
  c.num_classes = 7;
  c.feature_dim = 16;
  c.avg_degree = 8;
  c.seed = 21;
  Dataset ds = generate_dataset(c);
  EXPECT_EQ(ds.graph.num_nodes(), 5000);
  EXPECT_EQ(ds.features.size(0), 5000);
  EXPECT_EQ(ds.features.size(1), 16);
  EXPECT_EQ(ds.features.dtype(), DType::kF16);
  EXPECT_EQ(ds.labels.size(0), 5000);
  for (std::int64_t v = 0; v < 5000; ++v) {
    const auto y = ds.labels.at<std::int64_t>(v);
    ASSERT_GE(y, 0);
    ASSERT_LT(y, 7);
  }
  // splits are disjoint and within range
  std::set<NodeId> seen;
  for (const auto* split : {&ds.train_idx, &ds.val_idx, &ds.test_idx}) {
    for (const NodeId v : *split) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, 5000);
      ASSERT_TRUE(seen.insert(v).second) << "node in two splits";
    }
  }
  EXPECT_NEAR(static_cast<double>(ds.train_idx.size()), 0.5 * 5000, 2);
}

TEST(Dataset, FeaturesCorrelateWithLabels) {
  DatasetConfig c;
  c.num_nodes = 4000;
  c.num_classes = 4;
  c.feature_dim = 32;
  c.label_noise = 0.0;
  c.feature_signal = 0.5;
  c.feature_noise = 0.5;
  c.seed = 33;
  Dataset ds = generate_dataset(c);
  // Nearest-centroid on the raw features should beat chance comfortably:
  // estimate class centroids from half the nodes, classify the rest.
  std::vector<std::vector<double>> centroid(
      4, std::vector<double>(32, 0.0));
  std::vector<int> count(4, 0);
  Tensor f32 = ds.features.to(DType::kF32);
  for (std::int64_t v = 0; v < 2000; ++v) {
    const auto y = static_cast<std::size_t>(ds.labels.at<std::int64_t>(v));
    for (int j = 0; j < 32; ++j) centroid[y][j] += f32.at<float>(v, j);
    ++count[y];
  }
  for (std::size_t k = 0; k < 4; ++k) {
    for (auto& x : centroid[k]) x /= std::max(1, count[k]);
  }
  int hit = 0;
  for (std::int64_t v = 2000; v < 4000; ++v) {
    double best = 1e300;
    std::size_t arg = 0;
    for (std::size_t k = 0; k < 4; ++k) {
      double d = 0;
      for (int j = 0; j < 32; ++j) {
        const double diff = f32.at<float>(v, j) - centroid[k][j];
        d += diff * diff;
      }
      if (d < best) {
        best = d;
        arg = k;
      }
    }
    hit += (static_cast<std::int64_t>(arg) == ds.labels.at<std::int64_t>(v));
  }
  EXPECT_GT(hit / 2000.0, 0.5);  // chance is 0.25
}

TEST(Dataset, PresetsMatchPaperShape) {
  const DatasetConfig arxiv = arxiv_sim_config(0.1);
  EXPECT_EQ(arxiv.feature_dim, 128);
  EXPECT_EQ(arxiv.num_classes, 40);
  EXPECT_EQ(arxiv.num_nodes, 16900);
  const DatasetConfig products = products_sim_config(1.0);
  EXPECT_EQ(products.feature_dim, 100);
  EXPECT_EQ(products.num_classes, 47);
  EXPECT_LT(products.train_frac, 0.1);  // products: tiny train, huge test
  EXPECT_GT(products.test_frac, 0.8);
  const DatasetConfig papers = papers_sim_config(1.0);
  EXPECT_EQ(papers.num_classes, 172);
  EXPECT_LT(papers.train_frac, 0.02);
  EXPECT_EQ(preset_config("arxiv-sim").name, "arxiv-sim");
  EXPECT_THROW(preset_config("imagenet"), std::invalid_argument);
}

}  // namespace
}  // namespace salient
