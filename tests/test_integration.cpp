// End-to-end integration tests through the salient::System facade: the full
// SALIENT stack (dataset -> loaders -> device -> model -> optimizer) trains
// to above-chance accuracy; the baseline configuration behaves equivalently
// in learning terms; sampled inference saturates with fanout (Table 6's
// qualitative claim at integration scale).
#include <gtest/gtest.h>

#include "core/system.h"

namespace salient {
namespace {

SystemConfig tiny_config() {
  SystemConfig cfg;
  cfg.dataset = "arxiv-sim";
  cfg.dataset_scale = 0.03;  // ~5K nodes: fast CI-size run
  cfg.arch = "sage";
  cfg.hidden_channels = 32;
  cfg.num_layers = 2;
  cfg.train_fanouts = {8, 5};
  cfg.infer_fanouts = {10, 10};
  cfg.batch_size = 256;
  cfg.num_workers = 2;
  cfg.lr = 5e-3;
  cfg.seed = 7;
  return cfg;
}

TEST(System, BuildsFromPreset) {
  System sys(tiny_config());
  EXPECT_EQ(sys.dataset().name, "arxiv-sim");
  EXPECT_EQ(sys.dataset().feature_dim, 128);
  EXPECT_EQ(sys.dataset().num_classes, 40);
  EXPECT_GT(sys.dataset().graph.num_nodes(), 4000);
  EXPECT_EQ(sys.model()->arch(), std::string("sage"));
}

TEST(System, SalientPipelineTrainsAboveChance) {
  System sys(tiny_config());
  auto stats = sys.train(6);
  ASSERT_EQ(stats.size(), 6u);
  EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss);
  const double acc = sys.test_accuracy();
  EXPECT_GT(acc, 0.30);  // chance is 1/40 = 0.025
  EXPECT_GT(sys.val_accuracy(), 0.30);
  EXPECT_EQ(sys.epochs_trained(), 6);
}

TEST(System, BaselineConfigurationAlsoTrains) {
  SystemConfig cfg = tiny_config();
  cfg.loader_kind = LoaderKind::kBaseline;
  cfg.execution = ExecutionMode::kBlocking;
  System sys(cfg);
  auto stats = sys.train(4);
  EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss);
  EXPECT_GT(sys.test_accuracy(), 0.2);
  // blocking run attributes blocking time to transfer (assertions on)
  EXPECT_GT(stats.front().blocking.total(Phase::kTransfer), 0.0);
}

TEST(System, CustomDatasetConstructor) {
  DatasetConfig dc;
  dc.name = "custom";
  dc.num_nodes = 3000;
  dc.feature_dim = 12;
  dc.num_classes = 3;
  dc.avg_degree = 8;
  dc.seed = 5;
  Dataset ds = generate_dataset(dc);
  SystemConfig cfg = tiny_config();
  cfg.hidden_channels = 16;
  System sys(std::move(ds), cfg);
  EXPECT_EQ(sys.dataset().name, "custom");
  sys.train(3);
  EXPECT_GT(sys.test_accuracy(), 0.4);  // 3 classes, strong structure
}

TEST(System, InferenceFanoutSweepSaturates) {
  System sys(tiny_config());
  sys.train(6);
  const std::vector<std::int64_t> f5{5, 5};
  const std::vector<std::int64_t> f20{20, 20};
  const double a5 = sys.test_accuracy(f5);
  const double a20 = sys.test_accuracy(f20);
  // fanout 20 within a whisker of (usually above) fanout 5
  EXPECT_GT(a20, a5 - 0.03);
}

TEST(System, ParseFanoutsHelper) {
  EXPECT_EQ(parse_fanouts("15,10,5"),
            (std::vector<std::int64_t>{15, 10, 5}));
  EXPECT_EQ(parse_fanouts("20"), (std::vector<std::int64_t>{20}));
  EXPECT_THROW(parse_fanouts(""), std::invalid_argument);
}

TEST(System, ArchitectureSweepRuns) {
  for (const char* arch : {"gat", "gin", "sage-ri"}) {
    SystemConfig cfg = tiny_config();
    cfg.arch = arch;
    cfg.batch_size = 512;
    System sys(cfg);
    auto stats = sys.train(1);
    EXPECT_GT(stats[0].num_batches, 0) << arch;
    EXPECT_TRUE(std::isfinite(stats[0].mean_loss)) << arch;
  }
}

}  // namespace
}  // namespace salient
