// Tests for dataset serialization (graph/io) and the training utilities
// (LR schedulers, gradient clipping).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "graph/io.h"
#include "sampling/fast_sampler.h"
#include "optim/lr_scheduler.h"
#include "tensor/ops.h"

namespace salient {
namespace {

Dataset make_ds() {
  DatasetConfig c;
  c.name = "io-test";
  c.num_nodes = 1200;
  c.feature_dim = 10;
  c.num_classes = 4;
  c.avg_degree = 6;
  c.seed = 19;
  return generate_dataset(c);
}

TEST(DatasetIo, RoundTripsEverythingExactly) {
  Dataset ds = make_ds();
  const char* path = "/tmp/salient_ds.bin";
  save_dataset(ds, path);
  Dataset back = load_dataset(path);
  EXPECT_EQ(back.name, ds.name);
  EXPECT_EQ(back.graph.num_nodes(), ds.graph.num_nodes());
  EXPECT_EQ(back.graph.indptr(), ds.graph.indptr());
  EXPECT_EQ(back.graph.indices(), ds.graph.indices());
  EXPECT_EQ(back.num_classes, ds.num_classes);
  EXPECT_EQ(back.feature_dim, ds.feature_dim);
  EXPECT_TRUE(allclose(back.features, ds.features, 0.0, 0.0));
  EXPECT_TRUE(allclose(back.labels, ds.labels));
  EXPECT_EQ(back.train_idx, ds.train_idx);
  EXPECT_EQ(back.val_idx, ds.val_idx);
  EXPECT_EQ(back.test_idx, ds.test_idx);
  std::remove(path);
}

TEST(DatasetIo, LoadedDatasetTrains) {
  Dataset ds = make_ds();
  const char* path = "/tmp/salient_ds2.bin";
  save_dataset(ds, path);
  Dataset back = load_dataset(path);
  // the loaded dataset drives the sampler/loader stack unchanged
  FastSampler sampler(back.graph, {5, 3});
  std::vector<NodeId> batch(back.train_idx.begin(),
                            back.train_idx.begin() + 32);
  Mfg mfg = sampler.sample(batch, 3);
  EXPECT_TRUE(mfg.valid());
  std::remove(path);
}

TEST(DatasetIo, RejectsCorruption) {
  Dataset ds = make_ds();
  const char* path = "/tmp/salient_ds3.bin";
  save_dataset(ds, path);
  // truncate
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }
  EXPECT_THROW(load_dataset(path), std::runtime_error);
  // bad magic
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("NOPE", 4);
    const std::uint32_t v = 1;
    out.write(reinterpret_cast<const char*>(&v), 4);
  }
  EXPECT_THROW(load_dataset(path), std::runtime_error);
  EXPECT_THROW(load_dataset("/tmp/salient_does_not_exist.bin"),
               std::runtime_error);
  std::remove(path);
}

TEST(LrScheduler, StepLrDecaysGeometrically) {
  Variable p(Tensor::ones({1}), true);
  optim::Adam adam({p}, 0.1);
  optim::StepLr sched(adam, /*step_size=*/2, /*gamma=*/0.5);
  EXPECT_DOUBLE_EQ(adam.lr(), 0.1);
  sched.step();  // epoch 1
  EXPECT_DOUBLE_EQ(adam.lr(), 0.1);
  sched.step();  // epoch 2 -> one decay
  EXPECT_DOUBLE_EQ(adam.lr(), 0.05);
  sched.step();
  sched.step();  // epoch 4 -> two decays
  EXPECT_DOUBLE_EQ(adam.lr(), 0.025);
}

TEST(LrScheduler, CosineAnnealsToEtaMin) {
  Variable p(Tensor::ones({1}), true);
  optim::Adam adam({p}, 0.2);
  optim::CosineLr sched(adam, /*t_max=*/10, /*eta_min=*/0.02);
  double prev = adam.lr();
  for (int e = 0; e < 10; ++e) {
    sched.step();
    EXPECT_LE(adam.lr(), prev + 1e-12);  // monotone decreasing
    prev = adam.lr();
  }
  EXPECT_NEAR(adam.lr(), 0.02, 1e-9);
  sched.step();  // past t_max: clamped
  EXPECT_NEAR(adam.lr(), 0.02, 1e-9);
}

TEST(ClipGradNorm, ScalesOnlyWhenAboveThreshold) {
  Variable a(Tensor::zeros({2}), true);
  Variable b(Tensor::zeros({2}), true);
  a.accumulate_grad(Tensor::from_vector<float>({3, 0}, {2}));
  b.accumulate_grad(Tensor::from_vector<float>({0, 4}, {2}));
  // global norm = 5
  const double norm = optim::clip_grad_norm({a, b}, 2.5);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(a.grad().at<float>(0), 1.5, 1e-5);
  EXPECT_NEAR(b.grad().at<float>(1), 2.0, 1e-5);
  // below threshold: untouched
  const double norm2 = optim::clip_grad_norm({a, b}, 100.0);
  EXPECT_NEAR(norm2, 2.5, 1e-5);
  EXPECT_NEAR(a.grad().at<float>(0), 1.5, 1e-5);
}

TEST(ClipGradNorm, SkipsUndefinedGrads) {
  Variable a(Tensor::zeros({2}), true);
  EXPECT_DOUBLE_EQ(optim::clip_grad_norm({a}, 1.0), 0.0);
}

}  // namespace
}  // namespace salient
