// Kernel-layer tests (tensor/kernel_config.h, tensor/ops.cpp,
// tensor/matmul.cpp): the optimized (vectorized + parallel) kernels must be
//   * bitwise identical to the reference kernels for the SpMM family,
//     elementwise/reduction ops, and row indexing;
//   * within a tight tolerance of the reference for GEMM (register tiling
//     changes the floating-point association, nothing else);
//   * bitwise deterministic across thread-pool sizes {1, 2, 8};
//   * correct on edge cases (empty index sets, ragged rows, all-zero-degree
//     CSRs) and under autograd::gradcheck on the optimized path.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "autograd/functions.h"
#include "autograd/gradcheck.h"
#include "tensor/kernel_config.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace salient {
namespace {

namespace ag = autograd;

/// Scoped kernel-kind + kernel-pool override; restores defaults on exit.
class KernelGuard {
 public:
  KernelGuard() : saved_(ops::kernel_kind()) {}
  ~KernelGuard() {
    ops::set_kernel_pool(nullptr);
    ops::set_kernel_kind(saved_);
  }
  void use(ops::KernelKind kind, ThreadPool* pool = nullptr) {
    ops::set_kernel_kind(kind);
    ops::set_kernel_pool(pool);
  }

 private:
  ops::KernelKind saved_;
};

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.dtype() == b.dtype() && a.shape() == b.shape() &&
         std::memcmp(a.raw(), b.raw(), a.nbytes()) == 0;
}

/// Random destination-major CSR with ragged rows: a mix of empty rows,
/// light rows, and one heavy row to make chunk boundaries interesting.
struct Csr {
  std::vector<std::int64_t> indptr;
  std::vector<std::int64_t> indices;
  std::vector<double> weights;
  std::int64_t num_dst = 0;
  std::int64_t num_src = 0;
};

Csr make_csr(std::int64_t num_dst, std::int64_t num_src, std::uint64_t seed) {
  Csr c;
  c.num_dst = num_dst;
  c.num_src = num_src;
  c.indptr.push_back(0);
  Xoshiro256ss rng(seed);
  for (std::int64_t d = 0; d < num_dst; ++d) {
    std::int64_t deg = 0;
    const std::uint64_t r = bounded_rand(rng, 10);
    if (r == 0) {
      deg = 0;  // empty row
    } else if (r == 1) {
      deg = 40;  // heavy row
    } else {
      deg = 1 + static_cast<std::int64_t>(bounded_rand(rng, 8));
    }
    for (std::int64_t k = 0; k < deg; ++k) {
      c.indices.push_back(static_cast<std::int64_t>(
          bounded_rand(rng, static_cast<std::uint64_t>(num_src))));
      c.weights.push_back(
          0.1 + static_cast<double>(bounded_rand(rng, 100)) / 50.0);
    }
    c.indptr.push_back(static_cast<std::int64_t>(c.indices.size()));
  }
  return c;
}

/// Run `fn` under the reference kernels, then under the optimized kernels on
/// pools of size {1, 2, 8}; assert every optimized result is bitwise equal
/// to the reference result.
void expect_ref_opt_bitwise(const std::function<Tensor()>& fn,
                            const char* what) {
  KernelGuard guard;
  guard.use(ops::KernelKind::kRef);
  const Tensor ref = fn();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    guard.use(ops::KernelKind::kOpt, &pool);
    const Tensor opt = fn();
    EXPECT_TRUE(bitwise_equal(ref, opt))
        << what << ": optimized kernel diverges at " << threads << " threads";
  }
}

// Sizes chosen so total work clears ops::kParallelGrain and the parallel
// decomposition actually engages on the multi-thread pools.
constexpr std::int64_t kRows = 160;
constexpr std::int64_t kCols = 128;

TEST(Elementwise, RefVsOptBitwise) {
  for (const DType dt : {DType::kF32, DType::kF64}) {
    const Tensor a = Tensor::uniform({kRows, kCols}, 11, -2, 2, dt);
    const Tensor b = Tensor::uniform({kRows, kCols}, 12, -2, 2, dt);
    expect_ref_opt_bitwise([&] { return ops::add(a, b); }, "add");
    expect_ref_opt_bitwise([&] { return ops::sub(a, b); }, "sub");
    expect_ref_opt_bitwise([&] { return ops::mul(a, b); }, "mul");
    expect_ref_opt_bitwise([&] { return ops::scale(a, 0.37); }, "scale");
    expect_ref_opt_bitwise([&] { return ops::add_scaled(a, b, -1.25); },
                           "add_scaled");
    expect_ref_opt_bitwise([&] { return ops::relu(a); }, "relu");
    expect_ref_opt_bitwise([&] { return ops::leaky_relu(a, 0.1); },
                           "leaky_relu");
    expect_ref_opt_bitwise([&] { return ops::exp(a); }, "exp");
    expect_ref_opt_bitwise([&] { return ops::log(ops::relu(a)); }, "log");
    expect_ref_opt_bitwise(
        [&] {
          Tensor acc = a.clone();
          ops::axpy_(acc, b, 0.77);
          return acc;
        },
        "axpy_");
  }
}

TEST(Reductions, RefVsOptBitwise) {
  for (const DType dt : {DType::kF32, DType::kF64}) {
    const Tensor x = Tensor::uniform({kRows, kCols}, 21, -3, 3, dt);
    const Tensor bias = Tensor::uniform({kCols}, 22, -1, 1, dt);
    expect_ref_opt_bitwise([&] { return ops::add_row_broadcast(x, bias); },
                           "add_row_broadcast");
    expect_ref_opt_bitwise([&] { return ops::sum_rows(x); }, "sum_rows");
    expect_ref_opt_bitwise([&] { return ops::log_softmax_rows(x); },
                           "log_softmax_rows");
    expect_ref_opt_bitwise([&] { return ops::argmax_rows(x); },
                           "argmax_rows");
  }
}

TEST(RowIndexing, RefVsOptBitwise) {
  const Tensor x = Tensor::uniform({kRows, kCols}, 31, -1, 1);
  Xoshiro256ss rng(32);
  std::vector<std::int64_t> raw(512);
  for (auto& v : raw) {
    v = static_cast<std::int64_t>(
        bounded_rand(rng, static_cast<std::uint64_t>(kRows)));
  }
  const Tensor idx = Tensor::from_vector<std::int64_t>(
      raw, {static_cast<std::int64_t>(raw.size())});
  expect_ref_opt_bitwise([&] { return ops::gather_rows(x, idx); },
                         "gather_rows");
  const Tensor src =
      Tensor::uniform({static_cast<std::int64_t>(raw.size()), kCols}, 33);
  expect_ref_opt_bitwise(
      [&] {
        Tensor dst = Tensor::zeros({kRows, kCols}, DType::kF32);
        ops::scatter_add_rows_(dst, idx, src);
        return dst;
      },
      "scatter_add_rows_");
}

TEST(Spmm, ForwardAndBackwardRefVsOptBitwise) {
  const Csr c = make_csr(200, 160, 41);
  auto indptr = c.indptr;
  auto indices = c.indices;
  for (const DType dt : {DType::kF32, DType::kF64}) {
    const Tensor x = Tensor::uniform({c.num_src, 64}, 42, -1, 1, dt);
    const Tensor g = Tensor::uniform({c.num_dst, 64}, 43, -1, 1, dt);
    expect_ref_opt_bitwise(
        [&] { return ops::spmm_mean(indptr, indices, x, c.num_dst); },
        "spmm_mean");
    expect_ref_opt_bitwise(
        [&] { return ops::spmm_sum(indptr, indices, x, c.num_dst); },
        "spmm_sum");
    expect_ref_opt_bitwise(
        [&] {
          return ops::spmm_weighted(indptr, indices, c.weights, x, c.num_dst);
        },
        "spmm_weighted");
    expect_ref_opt_bitwise(
        [&] { return ops::spmm_mean_backward(indptr, indices, g, c.num_src); },
        "spmm_mean_backward");
    expect_ref_opt_bitwise(
        [&] { return ops::spmm_sum_backward(indptr, indices, g, c.num_src); },
        "spmm_sum_backward");
    expect_ref_opt_bitwise(
        [&] {
          return ops::spmm_weighted_backward(indptr, indices, c.weights, g,
                                             c.num_src);
        },
        "spmm_weighted_backward");
    expect_ref_opt_bitwise(
        [&] { return ops::spmm_max(indptr, indices, x, c.num_dst, nullptr); },
        "spmm_max");
    // spmm_max argmax + its backward routing.
    KernelGuard guard;
    guard.use(ops::KernelKind::kRef);
    std::vector<std::int64_t> arg_ref;
    const Tensor max_ref = ops::spmm_max(indptr, indices, x, c.num_dst,
                                         &arg_ref);
    const Tensor gmax_ref = ops::spmm_max_backward(arg_ref, g, c.num_src);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      guard.use(ops::KernelKind::kOpt, &pool);
      std::vector<std::int64_t> arg_opt;
      const Tensor max_opt = ops::spmm_max(indptr, indices, x, c.num_dst,
                                           &arg_opt);
      EXPECT_TRUE(bitwise_equal(max_ref, max_opt));
      EXPECT_EQ(arg_ref, arg_opt) << "argmax diverges at " << threads;
      const Tensor gmax_opt = ops::spmm_max_backward(arg_opt, g, c.num_src);
      EXPECT_TRUE(bitwise_equal(gmax_ref, gmax_opt));
    }
  }
}

TEST(Spmm, EdgeCases) {
  KernelGuard guard;
  ThreadPool pool(4);
  guard.use(ops::KernelKind::kOpt, &pool);
  const Tensor x = Tensor::uniform({8, 16}, 51);
  // All-zero-degree CSR: every output row stays zero, argmax stays -1.
  const std::vector<std::int64_t> empty_indptr(7, 0);
  const std::vector<std::int64_t> no_indices;
  std::vector<std::int64_t> argmax;
  const Tensor y = ops::spmm_max(empty_indptr, no_indices, x, 6, &argmax);
  EXPECT_TRUE(bitwise_equal(y, Tensor::zeros({6, 16}, DType::kF32)));
  for (const std::int64_t a : argmax) EXPECT_EQ(a, -1);
  EXPECT_TRUE(bitwise_equal(ops::spmm_mean(empty_indptr, no_indices, x, 6),
                            Tensor::zeros({6, 16}, DType::kF32)));
  // Empty gather.
  const Tensor no_idx = Tensor::zeros({0}, DType::kI64);
  EXPECT_EQ(ops::gather_rows(x, no_idx).size(0), 0);
  // Out-of-range source indices still throw (validation is hoisted, not
  // dropped).
  const std::vector<std::int64_t> bad_indptr{0, 1};
  const std::vector<std::int64_t> bad_indices{99};
  EXPECT_THROW(ops::spmm_sum(bad_indptr, bad_indices, x, 1),
               std::out_of_range);
  EXPECT_THROW(ops::spmm_mean_backward(
                   bad_indptr, bad_indices,
                   Tensor::uniform({1, 16}, 52), 8),
               std::out_of_range);
  const Tensor bad_idx = Tensor::from_vector<std::int64_t>({-3}, {1});
  EXPECT_THROW(ops::gather_rows(x, bad_idx), std::out_of_range);
}

TEST(Gemm, RefVsOptWithinUlpBound) {
  KernelGuard guard;
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      for (const DType dt : {DType::kF32, DType::kF64}) {
        const Tensor a = Tensor::uniform(ta ? std::vector<std::int64_t>{96, 70}
                                            : std::vector<std::int64_t>{70, 96},
                                         61 + ta, -1, 1, dt);
        const Tensor b = Tensor::uniform(tb ? std::vector<std::int64_t>{83, 96}
                                            : std::vector<std::int64_t>{96, 83},
                                         63 + tb, -1, 1, dt);
        guard.use(ops::KernelKind::kRef);
        const Tensor ref = ops::matmul(a, b, ta, tb);
        ThreadPool pool(4);
        guard.use(ops::KernelKind::kOpt, &pool);
        const Tensor opt = ops::matmul(a, b, ta, tb);
        // Only the summation association differs; with K=96 and inputs in
        // [-1,1] the results agree to a few ULP.
        const double tol = dt == DType::kF32 ? 2e-5 : 1e-13;
        EXPECT_TRUE(allclose(ref, opt, tol, tol))
            << "ta=" << ta << " tb=" << tb;
      }
    }
  }
}

TEST(Gemm, OptDeterministicAcrossPoolSizes) {
  KernelGuard guard;
  const Tensor a = Tensor::uniform({130, 77}, 71, -1, 1);
  const Tensor b = Tensor::uniform({77, 90}, 72, -1, 1);
  ThreadPool p1(1);
  guard.use(ops::KernelKind::kOpt, &p1);
  const Tensor base = ops::matmul(a, b);
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    guard.use(ops::KernelKind::kOpt, &pool);
    EXPECT_TRUE(bitwise_equal(base, ops::matmul(a, b)))
        << "GEMM result depends on pool size (" << threads << " threads)";
  }
}

TEST(Gemm, TallSkinnyAndTinyShapes) {
  KernelGuard guard;
  ThreadPool pool(4);
  for (const auto& dims : std::vector<std::vector<std::int64_t>>{
           {1, 1, 1}, {2, 3, 5}, {5, 1, 7}, {1, 64, 1}, {257, 3, 19}}) {
    const Tensor a = Tensor::uniform({dims[0], dims[1]}, 81, -1, 1);
    const Tensor b = Tensor::uniform({dims[1], dims[2]}, 82, -1, 1);
    guard.use(ops::KernelKind::kRef);
    const Tensor ref = ops::matmul(a, b);
    guard.use(ops::KernelKind::kOpt, &pool);
    const Tensor opt = ops::matmul(a, b);
    EXPECT_TRUE(allclose(ref, opt, 1e-5, 1e-6))
        << dims[0] << "x" << dims[1] << "x" << dims[2];
  }
}

TEST(Gradcheck, OptimizedKernelPath) {
  KernelGuard guard;
  ThreadPool pool(4);
  guard.use(ops::KernelKind::kOpt, &pool);
  // Matmul through the packed microkernel.
  {
    auto fn = [](const std::vector<Variable>& in) {
      Variable y = ag::matmul(in[0], in[1]);
      return ag::nll_loss(ag::log_softmax(y),
                          Tensor::from_vector<std::int64_t>({0, 2, 1}, {3}));
    };
    auto leaf = [](std::vector<std::int64_t> shape, std::uint64_t seed) {
      return Variable(Tensor::uniform(std::move(shape), seed, -1, 1,
                                      DType::kF64),
                      true);
    };
    auto r = ag::gradcheck(fn, {leaf({3, 5}, 91), leaf({5, 4}, 92)});
    EXPECT_TRUE(r.ok) << r.message;
  }
  // The SpMM family through the validated/parallel kernels.
  {
    auto indptr = std::make_shared<const std::vector<std::int64_t>>(
        std::vector<std::int64_t>{0, 2, 2, 5});
    auto indices = std::make_shared<const std::vector<std::int64_t>>(
        std::vector<std::int64_t>{1, 3, 0, 2, 3});
    auto weights = std::make_shared<const std::vector<double>>(
        std::vector<double>{0.5, 1.5, 2.0, 0.25, 1.0});
    const Tensor target = Tensor::from_vector<std::int64_t>({0, 1, 1}, {3});
    std::vector<std::function<Variable(const Variable&)>> builders{
        [&](const Variable& x) { return ag::spmm_mean(indptr, indices, x, 3); },
        [&](const Variable& x) { return ag::spmm_sum(indptr, indices, x, 3); },
        [&](const Variable& x) {
          return ag::spmm_weighted(indptr, indices, weights, x, 3);
        },
        [&](const Variable& x) { return ag::spmm_max(indptr, indices, x, 3); },
    };
    for (std::size_t i = 0; i < builders.size(); ++i) {
      auto fn = [&](const std::vector<Variable>& in) {
        return ag::nll_loss(ag::log_softmax(builders[i](in[0])), target);
      };
      Variable x(Tensor::uniform({4, 2}, 95 + i, -1, 1, DType::kF64), true);
      auto r = ag::gradcheck(fn, {x});
      EXPECT_TRUE(r.ok) << "builder " << i << ": " << r.message;
    }
  }
}

// --- fused GEMM epilogues (tensor/epilogue.h) --------------------------------

/// The unfused composition the fused epilogue must agree with bitwise when
/// both run under the same kernel kind: {matmul(trans_b), add_row_broadcast,
/// relu, mul(dropout_mask_counter)}, truncated to the requested kind.
Tensor unfused_linear(const Tensor& x, const Tensor& w, const Tensor& bias,
                      ops::Epilogue kind, double p, std::uint64_t seed) {
  Tensor y = ops::matmul(x, w, false, true);
  if (kind == ops::Epilogue::kNone) return y;
  y = ops::add_row_broadcast(y, bias);
  if (kind == ops::Epilogue::kBias) return y;
  y = ops::relu(y);
  if (kind == ops::Epilogue::kBiasRelu) return y;
  return ops::mul(y, ops::dropout_mask_counter(y.shape(), p, seed));
}

TEST(FusedEpilogue, BitwiseMatchesUnfusedCompositionPerKind) {
  // Shapes straddle microkernel tile boundaries (m % MR != 0, n % NR != 0)
  // and clear the parallel grain so multi-thread pools actually split work.
  const Tensor x = Tensor::uniform({301, 47}, 101, -1, 1);
  const Tensor w = Tensor::uniform({133, 47}, 102, -1, 1);
  const Tensor bias = Tensor::uniform({133}, 103, -1, 1);
  const double p = 0.35;
  const std::uint64_t seed = 0xd20;
  KernelGuard guard;
  for (const ops::Epilogue kind :
       {ops::Epilogue::kNone, ops::Epilogue::kBias, ops::Epilogue::kBiasRelu,
        ops::Epilogue::kBiasReluDropout}) {
    for (const ops::KernelKind kk :
         {ops::KernelKind::kRef, ops::KernelKind::kOpt}) {
      for (const std::size_t threads : {1u, 4u, 8u}) {
        ThreadPool pool(threads);
        guard.use(kk, &pool);
        const Tensor want = unfused_linear(x, w, bias, kind, p, seed);
        Tensor mask;
        const Tensor got =
            ops::gemm_epilogue(x, w, bias, kind, p, seed, &mask);
        EXPECT_TRUE(bitwise_equal(want, got))
            << "kind=" << static_cast<int>(kind)
            << " kernel=" << static_cast<int>(kk) << " threads=" << threads;
        if (kind == ops::Epilogue::kBiasRelu ||
            kind == ops::Epilogue::kBiasReluDropout) {
          // The saved mask is exactly d y/d pre: rebuild y from the
          // pre-activation and compare.
          ASSERT_EQ(mask.shape(), got.shape());
          const Tensor pre = ops::add_row_broadcast(
              ops::matmul(x, w, false, true), bias);
          EXPECT_TRUE(bitwise_equal(got, ops::mul(pre, mask)) ||
                      allclose(got, ops::mul(pre, mask), 0, 0))
              << "mask does not reconstruct the output";
        }
      }
    }
  }
}

TEST(FusedEpilogue, RefVsOptWithinUlpBound) {
  const Tensor x = Tensor::uniform({96, 64}, 111, -1, 1);
  const Tensor w = Tensor::uniform({80, 64}, 112, -1, 1);
  const Tensor bias = Tensor::uniform({80}, 113, -1, 1);
  KernelGuard guard;
  guard.use(ops::KernelKind::kRef);
  const Tensor ref = ops::gemm_epilogue(x, w, bias, ops::Epilogue::kBiasRelu,
                                        0, 0, nullptr);
  ThreadPool pool(4);
  guard.use(ops::KernelKind::kOpt, &pool);
  const Tensor opt = ops::gemm_epilogue(x, w, bias, ops::Epilogue::kBiasRelu,
                                        0, 0, nullptr);
  // Only the GEMM association differs between ref and opt.
  EXPECT_TRUE(allclose(ref, opt, 2e-5, 2e-5));
}

TEST(FusedEpilogue, DeterministicAcrossPoolSizes) {
  const Tensor x = Tensor::uniform({257, 33}, 121, -1, 1);
  const Tensor w = Tensor::uniform({65, 33}, 122, -1, 1);
  const Tensor bias = Tensor::uniform({65}, 123, -1, 1);
  KernelGuard guard;
  ThreadPool p1(1);
  guard.use(ops::KernelKind::kOpt, &p1);
  Tensor mask1;
  const Tensor base = ops::gemm_epilogue(
      x, w, bias, ops::Epilogue::kBiasReluDropout, 0.5, 0xfeed, &mask1);
  for (const std::size_t threads : {4u, 8u}) {
    ThreadPool pool(threads);
    guard.use(ops::KernelKind::kOpt, &pool);
    Tensor mask;
    const Tensor got = ops::gemm_epilogue(
        x, w, bias, ops::Epilogue::kBiasReluDropout, 0.5, 0xfeed, &mask);
    EXPECT_TRUE(bitwise_equal(base, got)) << threads << " threads";
    EXPECT_TRUE(bitwise_equal(mask1, mask)) << threads << " threads";
  }
}

// --- mixed-precision + compressed GEMM (tensor/quantize.h) -------------------

TEST(MixedMatmul, F16OperandsBitwiseMatchUpconvert) {
  KernelGuard guard;
  const Tensor a32 = Tensor::uniform({85, 50}, 131, -1, 1);
  const Tensor b32 = Tensor::uniform({50, 67}, 132, -1, 1);
  const Tensor a16 = a32.to(DType::kF16);
  const Tensor b16 = b32.to(DType::kF16);
  const Tensor a16up = a16.to(DType::kF32);
  const Tensor b16up = b16.to(DType::kF32);
  struct Case {
    Tensor a, b, ua, ub;
    const char* what;
  };
  const Case cases[] = {
      {a16, b32, a16up, b32, "f16 x f32"},
      {a32, b16, a32, b16up, "f32 x f16"},
      {a16, b16, a16up, b16up, "f16 x f16"},
  };
  for (const ops::KernelKind kk :
       {ops::KernelKind::kRef, ops::KernelKind::kOpt}) {
    for (const std::size_t threads : {1u, 4u}) {
      ThreadPool pool(threads);
      guard.use(kk, &pool);
      for (const Case& c : cases) {
        const Tensor mixed = ops::matmul(c.a, c.b);
        const Tensor up = ops::matmul(c.ua, c.ub);
        EXPECT_EQ(mixed.dtype(), DType::kF32);
        EXPECT_TRUE(bitwise_equal(mixed, up))
            << c.what << " kernel=" << static_cast<int>(kk)
            << " threads=" << threads;
      }
      // Transposed f16 operand (the grad_w shape of the backward pass).
      const Tensor wt16 = Tensor::uniform({67, 50}, 133, -1, 1).to(DType::kF16);
      const Tensor mixed_t = ops::matmul(a32, wt16, false, true);
      const Tensor up_t = ops::matmul(a32, wt16.to(DType::kF32), false, true);
      EXPECT_TRUE(bitwise_equal(mixed_t, up_t)) << "f32 x f16^T";
    }
  }
}

TEST(QuantizeRows, RoundTripWithinPerRowBound) {
  const Tensor x = Tensor::uniform({60, 93}, 141, -5, 5);
  Tensor scale, zero;
  const Tensor q = ops::quantize_rows(x, &scale, &zero);
  ASSERT_EQ(q.dtype(), DType::kInt8Q);
  ASSERT_EQ(scale.shape(), (std::vector<std::int64_t>{60}));
  const Tensor back = ops::dequantize_rows(q, scale, zero);
  const float* px = x.data<float>();
  const float* pb = back.data<float>();
  const float* ps = scale.data<float>();
  for (std::int64_t i = 0; i < 60; ++i) {
    // Affine rounding error is at most scale/2 = (max-min)/510 per element.
    const float bound = ps[i] * 0.5f + 1e-6f;
    for (std::int64_t j = 0; j < 93; ++j) {
      ASSERT_NEAR(pb[i * 93 + j], px[i * 93 + j], bound)
          << "row " << i << " col " << j;
    }
  }
}

TEST(QuantizeRows, ConstantRowIsExact) {
  Tensor x({2, 5}, DType::kF32);
  float* p = x.data<float>();
  for (int j = 0; j < 5; ++j) p[j] = 3.25f;
  for (int j = 5; j < 10; ++j) p[j] = -0.75f;
  Tensor scale, zero;
  const Tensor q = ops::quantize_rows(x, &scale, &zero);
  const Tensor back = ops::dequantize_rows(q, scale, zero);
  EXPECT_TRUE(bitwise_equal(x, back));
}

TEST(CompressedMatmul, BitwiseMatchesDequantizedMatmul) {
  KernelGuard guard;
  const Tensor a = Tensor::uniform({91, 53}, 151, -2, 2);
  const Tensor b = Tensor::uniform({53, 72}, 152, -1, 1);
  const Tensor bt = Tensor::uniform({72, 53}, 153, -1, 1);
  Tensor scale, zero;
  const Tensor q = ops::quantize_rows(a, &scale, &zero);
  for (const ops::KernelKind kk :
       {ops::KernelKind::kRef, ops::KernelKind::kOpt}) {
    for (const std::size_t threads : {1u, 4u, 8u}) {
      ThreadPool pool(threads);
      guard.use(kk, &pool);
      const Tensor deq = ops::dequantize_rows(q, scale, zero);
      EXPECT_TRUE(bitwise_equal(ops::matmul_compressed(q, scale, zero, b),
                                ops::matmul(deq, b)))
          << "kernel=" << static_cast<int>(kk) << " threads=" << threads;
      EXPECT_TRUE(
          bitwise_equal(ops::matmul_compressed(q, scale, zero, bt, true),
                        ops::matmul(deq, bt, false, true)))
          << "trans_b kernel=" << static_cast<int>(kk)
          << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace salient
