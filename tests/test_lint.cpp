// Tests for tools/salient_lint.cpp (docs/STATIC_ANALYSIS.md).
//
// Two layers:
//   * fixture tests: a temp tree with one known-bad file per rule, checked
//     through the real binary (argument parsing, exit codes, and output
//     format are part of the contract — CI greps this output);
//   * a live-tree self-check: the actual src/ must lint clean under the
//     committed allowlist, with no unused allowlist entries. This is the
//     same invocation as the `salient_lint_check` ctest, but run here too so
//     a lint regression and its cause land in one gtest failure message.
//
// The binary/tree/allowlist paths arrive as compile definitions
// (SALIENT_LINT_BIN etc., see tests/CMakeLists.txt), so the test is
// location-independent.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run_lint(const std::string& args) {
  const std::string cmd = std::string(SALIENT_LINT_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  r.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return r;
}

/// A scratch source tree under the test's working directory, torn down on
/// destruction. Names are per-fixture, so tests cannot collide.
class LintTree {
 public:
  explicit LintTree(const std::string& name)
      : root_(fs::current_path() / ("lint_fixture_" + name)) {
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~LintTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << content;
  }

  std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

TEST(LintCli, ListRulesAndUsage) {
  const RunResult rules = run_lint("--list-rules");
  EXPECT_EQ(rules.exit_code, 0);
  for (const char* name :
       {"naked-mutex", "nondeterminism", "stdout-logging", "sleep"}) {
    EXPECT_NE(rules.output.find(name), std::string::npos) << rules.output;
  }
  EXPECT_EQ(run_lint("").exit_code, 2);
  EXPECT_EQ(run_lint("--root /nonexistent-salient-lint-dir").exit_code, 2);
}

TEST(LintRules, NakedMutexFlaggedOutsideUtil) {
  LintTree t("naked_mutex");
  t.write("serve/bad.cpp",
          "#include <mutex>\n"
          "std::mutex m;\n"
          "void f() { std::lock_guard<std::mutex> l(m); }\n");
  const RunResult r = run_lint("--root " + t.root());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("[naked-mutex]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("serve/bad.cpp:2"), std::string::npos) << r.output;
}

TEST(LintRules, UtilIsExemptFromNakedMutex) {
  LintTree t("util_exempt");
  t.write("util/wrapper.h", "#include <mutex>\nstd::mutex m;\n");
  const RunResult r = run_lint("--root " + t.root());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintRules, NondeterminismFlagged) {
  LintTree t("nondet");
  t.write("a.cpp",
          "int f() { return rand(); }\n"
          "unsigned g() { std::random_device rd; return rd(); }\n"
          "long h() { return time(nullptr); }\n");
  const RunResult r = run_lint("--root " + t.root());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("a.cpp:1"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("a.cpp:2"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("a.cpp:3"), std::string::npos) << r.output;
}

TEST(LintRules, TokenBoundariesAvoidFalsePositives) {
  LintTree t("boundaries");
  // Each of these contains a rule token as a substring of a longer
  // identifier; none may be flagged.
  t.write("clean.cpp",
          "int bounded_rand();\n"
          "int use() { return bounded_rand(); }\n"
          "void fmt(char* b, unsigned long n) { snprintf(b, n, \"x\"); }\n"
          "struct timer { long time_since_epoch(); };\n"
          "int strandify();\n");
  const RunResult r = run_lint("--root " + t.root());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintRules, CommentsAndStringsAreImmune) {
  LintTree t("scrub");
  t.write("doc.cpp",
          "// std::mutex in a comment is fine, as is rand()\n"
          "/* std::cout << \"hi\"; sleep_for(x); */\n"
          "const char* s = \"std::mutex rand() printf( sleep_for(\";\n"
          "const char* raw = R\"(std::condition_variable time(nullptr))\";\n"
          "int live;\n");
  const RunResult r = run_lint("--root " + t.root());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintRules, StdoutLoggingAndSleepFlagged) {
  LintTree t("io_sleep");
  t.write("b.cpp",
          "#include <cstdio>\n"
          "void log() { printf(\"x\"); }\n"
          "void nap() { std::this_thread::sleep_for(d); }\n");
  const RunResult r = run_lint("--root " + t.root());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("[stdout-logging]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[sleep]"), std::string::npos) << r.output;
}

TEST(LintRules, FaultDirectoryMaySleep) {
  LintTree t("fault_exempt");
  t.write("fault/inject.cpp",
          "void wedge() { std::this_thread::sleep_for(d); }\n");
  const RunResult r = run_lint("--root " + t.root());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintRules, ExplicitMemoryOrderFlagsNakedAtomicOps) {
  LintTree t("memorder");
  t.write("serve/c.cpp",
          "void f(std::atomic<int>& a) {\n"
          "  a.load();\n"
          "  a.store(1);\n"
          "  a.fetch_add(2);\n"
          "  int e = 0;\n"
          "  a.compare_exchange_strong(e, 1);\n"
          "}\n");
  const RunResult r = run_lint("--root " + t.root());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("[explicit-memory-order]"), std::string::npos)
      << r.output;
  for (const char* loc :
       {"serve/c.cpp:2", "serve/c.cpp:3", "serve/c.cpp:4", "serve/c.cpp:6"}) {
    EXPECT_NE(r.output.find(loc), std::string::npos) << r.output;
  }
}

TEST(LintRules, ExplicitMemoryOrderAcceptsAnnotatedOps) {
  LintTree t("memorder_ok");
  // Orders anywhere in the argument list count, including the two-order CAS
  // form and a multi-line call; util/ and check/ own the plain primitives.
  t.write("serve/ok.cpp",
          "void f(std::atomic<int>& a) {\n"
          "  a.load(std::memory_order_acquire);\n"
          "  a.store(1, std::memory_order_release);\n"
          "  int e = 0;\n"
          "  a.compare_exchange_weak(e, 1, std::memory_order_acq_rel,\n"
          "                          std::memory_order_relaxed);\n"
          "  a.fetch_add(\n"
          "      2, std::memory_order_relaxed);\n"
          "}\n");
  t.write("util/free.cpp", "int g(std::atomic<int>& a) { return a.load(); }\n");
  t.write("check/shim.cpp", "int h(std::atomic<int>& a) { return a.load(); }\n");
  const RunResult r = run_lint("--root " + t.root());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintRules, ExplicitMemoryOrderIgnoresNonMemberTokens) {
  LintTree t("memorder_bounds");
  // `load`/`store` as free functions or suffixes of longer member names must
  // not trip the member-call heuristic.
  t.write("a.cpp",
          "int load();\n"
          "int f() { return load(); }\n"
          "struct W { int preload(); int workload(); };\n"
          "int g(W& w) { return w.preload() + w.workload(); }\n");
  const RunResult r = run_lint("--root " + t.root());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintRules, GuardedByCoverageFlagsBareFieldNextToMutex) {
  LintTree t("guardcov");
  t.write("serve/g.cpp",
          "class C {\n"
          "  Mutex mu_;\n"
          "  int counter_;\n"
          "};\n");
  const RunResult r = run_lint("--root " + t.root());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("[guarded-by-coverage]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("`counter_`"), std::string::npos) << r.output;
}

TEST(LintRules, GuardedByCoverageAcceptsAnnotatedAndMarkedFields) {
  LintTree t("guardcov_ok");
  t.write("serve/ok.cpp",
          "class C {\n"
          " public:\n"
          "  int size() const { return n_; }\n"
          " private:\n"
          "  mutable Mutex mu_;\n"
          "  CondVar cv_;\n"
          "  int n_ GUARDED_BY(mu_) = 0;\n"
          "  std::atomic<int> hits_{0};\n"
          "  int cap_;  // unguarded: immutable after construction\n"
          "  // unguarded: single-writer, see retire protocol\n"
          "  int tail_;\n"
          "  static constexpr int kMax = 8;\n"
          "};\n"
          "class NoMutex { int anything_; };\n");
  const RunResult r = run_lint("--root " + t.root());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintAllowlist, SuppressesAndReportsUnused) {
  LintTree t("allow");
  t.write("x/a.cpp", "std::mutex m;\n");
  t.write("allow.txt",
          "naked-mutex x/a.cpp # wrapper-to-be\n"
          "sleep x/never.cpp # stale entry\n");
  const RunResult r =
      run_lint("--root " + t.root() + " --allowlist " + t.root() +
               "/allow.txt");
  // The finding is suppressed (exit 0) but the stale entry is called out.
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("unused allowlist entry: sleep x/never.cpp"),
            std::string::npos)
      << r.output;
}

TEST(LintAllowlist, MalformedFileIsAnError) {
  LintTree t("allow_bad");
  t.write("a.cpp", "int x;\n");
  t.write("bad.txt", "no-such-rule a.cpp # typo\n");
  const RunResult r =
      run_lint("--root " + t.root() + " --allowlist " + t.root() + "/bad.txt");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown rule"), std::string::npos) << r.output;
}

TEST(LintCli, FixSuggestionsNameTheReplacement) {
  LintTree t("fixes");
  t.write("a.cpp", "std::mutex m;\n");
  const RunResult r = run_lint("--root " + t.root() + " --fix-suggestions");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("fix: "), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("thread_annotations.h"), std::string::npos)
      << r.output;
}

// The committed tree must hold the bar the fixtures define: src/ lints clean
// under the committed allowlist, and the allowlist carries no dead entries.
TEST(LintLiveTree, SrcIsCleanUnderCommittedAllowlist) {
  const RunResult r = run_lint(std::string("--root ") + SALIENT_LINT_SRC +
                               " --allowlist " + SALIENT_LINT_ALLOWLIST);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("unused allowlist entry"), std::string::npos)
      << r.output;
}

}  // namespace
