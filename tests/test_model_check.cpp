// Schedule-exploration model-check scenarios (docs/STATIC_ANALYSIS.md,
// "Model checking"). Built only with SALIENT_MODEL_CHECK=ON and run under
// `ctest -L model_check`.
//
// Three kinds of tests live here:
//
//   * Checker self-tests: a deliberately racy toy queue the explorer MUST
//     catch within the default preemption bound, an ABBA deadlock it must
//     report with every blocked thread's op, and replay determinism — the
//     schedule string a failure prints reproduces the identical failure,
//     bit for bit, every time.
//
//   * Unit scenarios: bounded-exhaustive (or, where the space is too large,
//     seeded-random) exploration of the six shimmed components —
//     FrequencyTable, MpmcQueue, BlockingQueue, the ThreadPool broadcast
//     channel, PinnedPool, ResultCache. Each body is self-contained: it
//     constructs fresh state, spawns check::thread workers, joins them, and
//     asserts interleaving-independent invariants via check::expect().
//
// A scenario body runs once per explored schedule, so keep bodies small:
// every shim operation is a yield point and the schedule space is
// exponential in their count.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>

#include "check/sched.h"
#include "check/shim.h"
#include "prep/frequency_table.h"
#include "prep/pinned_pool.h"
#include "serve/result_cache.h"
#include "tensor/tensor.h"
#include "util/blocking_queue.h"
#include "util/mpmc_queue.h"
#include "util/thread_pool.h"

#if !defined(SALIENT_MODEL_CHECK_ENABLED)
// The CMake target is gated on SALIENT_MODEL_CHECK=ON, so this branch only
// triggers if someone adds the test to an OFF build by hand.
TEST(ModelCheck, RequiresInstrumentedBuild) {
  GTEST_SKIP() << "rebuild with -DSALIENT_MODEL_CHECK=ON";
}
#else

namespace {

using namespace salient;  // NOLINT(build/namespaces)

// ---------------------------------------------------------------------------
// Checker self-tests: the known-bug queue, deadlock detection, and replay.
// ---------------------------------------------------------------------------

// The planted bug: size_ is read, the slot written, and size_ written back as
// three separate steps. Two producers that both read size_ == 0 both write
// items_[0] and the queue ends up with one element instead of two — the
// classic lost-update race a CAS (or a mutex) would prevent. The checker must
// find an interleaving exposing it within the default preemption bound of 2.
struct RacyToyQueue {
  check::atomic<int> size_{0};
  int items_[8] = {};

  bool push(int v) {
    const int s = size_.load(std::memory_order_acquire);
    if (s >= 8) return false;
    items_[s] = v;  // bug: another pusher can claim the same slot
    size_.store(s + 1, std::memory_order_release);
    return true;
  }
};

void racy_queue_scenario() {
  RacyToyQueue q;
  check::thread a([&q] { q.push(1); });
  check::thread b([&q] { q.push(2); });
  a.join();
  b.join();
  check::expect(q.size_.load(std::memory_order_acquire) == 2,
                "two pushes must yield two elements (lost update)");
}

TEST(ModelCheckSelfTest, PlantedRacyQueueBugIsCaughtWithinBound) {
  const auto res = check::explore("racy_toy_queue", racy_queue_scenario);
  ASSERT_TRUE(res.found_bug) << res.report();
  EXPECT_NE(res.failure.find("expectation failed"), std::string::npos)
      << res.report();
  EXPECT_NE(res.failure.find("lost update"), std::string::npos)
      << res.report();
  // The failure carries a well-formed reproducer schedule string.
  ASSERT_FALSE(res.schedule.empty()) << res.report();
  EXPECT_EQ(res.schedule.find_first_not_of("0123456789."), std::string::npos)
      << "schedule string should be dot-separated thread ids: "
      << res.schedule;
}

TEST(ModelCheckSelfTest, ReplayOfAFailingScheduleIsDeterministic) {
  const auto found = check::explore("racy_toy_queue", racy_queue_scenario);
  ASSERT_TRUE(found.found_bug) << found.report();

  // Feeding the printed schedule back reproduces the identical interleaving:
  // same failure, same schedule, bitwise-identical report — twice over.
  const auto r1 =
      check::replay("racy_toy_queue", racy_queue_scenario, found.schedule);
  const auto r2 =
      check::replay("racy_toy_queue", racy_queue_scenario, found.schedule);
  ASSERT_TRUE(r1.found_bug) << r1.report();
  EXPECT_EQ(r1.failure, found.failure);
  EXPECT_EQ(r1.report(), r2.report());
  EXPECT_EQ(r1.schedule, r2.schedule);
}

TEST(ModelCheckSelfTest, RandomExplorationAlsoFindsThePlantedBug) {
  // The random fallback must be able to land on the same bug, and its
  // recorded schedule must replay to the same failure.
  const auto res =
      check::explore_random("racy_toy_queue", racy_queue_scenario,
                            /*iterations=*/500, /*seed=*/11);
  ASSERT_TRUE(res.found_bug) << res.report();
  const auto replayed =
      check::replay("racy_toy_queue", racy_queue_scenario, res.schedule);
  ASSERT_TRUE(replayed.found_bug) << replayed.report();
  EXPECT_EQ(replayed.failure, res.failure);
}

TEST(ModelCheckSelfTest, AbbaDeadlockIsDetectedAndReported) {
  const auto res = check::explore("abba_deadlock", [] {
    check::Mutex a;
    check::Mutex b;
    check::thread t([&] {
      check::LockGuard la(a);
      check::LockGuard lb(b);
    });
    {
      check::LockGuard lb(b);
      check::LockGuard la(a);
    }
    t.join();
  });
  ASSERT_TRUE(res.found_bug) << res.report();
  EXPECT_NE(res.failure.find("deadlock"), std::string::npos) << res.report();
}

// ---------------------------------------------------------------------------
// Unit scenarios.
// ---------------------------------------------------------------------------

TEST(ModelCheckScenario, FrequencyTableConcurrentAdds) {
  // Exercises the CAS slot-claim protocol: both threads add key 7, so they
  // can race to claim its slot; exactly one CAS must win and both increments
  // must land on the same counter.
  const auto res = check::explore("frequency_table_adds", [] {
    FrequencyTable table(8);
    check::thread t([&table] {
      table.add(7);
      table.add(9);
    });
    table.add(7);
    t.join();
    check::expect(table.count(7) == 2, "both adds of key 7 must accumulate");
    check::expect(table.count(9) == 1, "key 9 counted once");
    check::expect(table.distinct() == 2,
                  "distinct counter bumps once per claimed key");
  });
  EXPECT_FALSE(res.found_bug) << res.report();
}

TEST(ModelCheckScenario, FrequencyTableFullUnderContention) {
  // max_keys=1 sizes the table to 2 slots. Three distinct keys are inserted
  // from two threads: in every interleaving exactly one add() must throw
  // length_error (the table never over-admits, never throws early).
  const auto res = check::explore("frequency_table_full", [] {
    FrequencyTable table(1);
    int caught_worker = 0;
    int caught_main = 0;
    check::thread t([&] {
      try {
        table.add(101);
        table.add(202);
      } catch (const std::length_error&) {
        ++caught_worker;
      }
    });
    try {
      table.add(303);
    } catch (const std::length_error&) {
      ++caught_main;
    }
    t.join();
    check::expect(caught_worker + caught_main == 1,
                  "exactly one of three keys must overflow two slots");
    check::expect(table.distinct() == 2, "both slots claimed, none leaked");
  });
  EXPECT_FALSE(res.found_bug) << res.report();
}

TEST(ModelCheckScenario, MpmcQueueConcurrentProducers) {
  // Two producers contend on the Vyukov ticket CAS; neither push may fail
  // (capacity 2), and draining afterwards must yield both values with no
  // loss and no duplication.
  const auto res = check::explore("mpmc_two_producers", [] {
    MpmcQueue<int> q(2);
    check::thread p1(
        [&q] { check::expect(q.try_push(1), "push 1 fits in capacity 2"); });
    check::thread p2(
        [&q] { check::expect(q.try_push(2), "push 2 fits in capacity 2"); });
    p1.join();
    p2.join();
    int a = 0;
    int b = 0;
    int c = 0;
    check::expect(q.try_pop(a), "first value present after both pushes");
    check::expect(q.try_pop(b), "second value present after both pushes");
    check::expect(!q.try_pop(c), "queue fully drained");
    check::expect((a == 1 && b == 2) || (a == 2 && b == 1),
                  "no lost and no duplicated element");
  });
  EXPECT_FALSE(res.found_bug) << res.report();
}

TEST(ModelCheckScenario, BlockingQueueCloseWhileConsumerBlocks) {
  // The consumer's second pop() can begin before, between, or after the
  // producer's push+close; in every interleaving the pushed item is
  // delivered exactly once and the close is observed as nullopt after the
  // drain — including the interleaving where pop() is already parked in the
  // (virtualized) condvar wait when close() broadcasts.
  const auto res = check::explore("blocking_queue_close", [] {
    BlockingQueue<int> q(1);
    std::optional<int> first;
    std::optional<int> second;
    check::thread consumer([&] {
      first = q.pop();
      second = q.pop();
    });
    check::expect(q.push(1), "push into an open queue succeeds");
    q.close();
    consumer.join();
    check::expect(first.has_value() && *first == 1,
                  "the pushed item is delivered exactly once");
    check::expect(!second.has_value(),
                  "a closed, drained queue pops nullopt");
  });
  EXPECT_FALSE(res.found_bug) << res.report();
}

TEST(ModelCheckScenario, ThreadPoolConcurrentBroadcastCallers) {
  // Two external callers race parallel_for() on a shared 1-worker pool —
  // the cluster trainer's exact usage pattern. The broadcast epoch/job
  // channel must serialize the jobs and each caller's range must be covered
  // exactly once. The schedule space (pool worker + two callers + condvar
  // traffic) is too large for bounded-exhaustive DFS, so this scenario uses
  // the seeded-random fallback.
  const auto res = check::explore_random(
      "thread_pool_broadcast",
      [] {
        ThreadPool pool(1);
        std::array<std::int64_t, 4> out_a{};
        std::array<std::int64_t, 4> out_b{};
        check::thread caller_a([&] {
          pool.parallel_for(0, 4, [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i) {
              out_a[static_cast<std::size_t>(i)] = i + 1;
            }
          });
        });
        check::thread caller_b([&] {
          pool.parallel_for(0, 4, [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i) {
              out_b[static_cast<std::size_t>(i)] = 10 * (i + 1);
            }
          });
        });
        caller_a.join();
        caller_b.join();
        std::int64_t sum_a = 0;
        std::int64_t sum_b = 0;
        for (auto v : out_a) sum_a += v;
        for (auto v : out_b) sum_b += v;
        check::expect(sum_a == 10, "caller A's job covered its whole range");
        check::expect(sum_b == 100, "caller B's job covered its whole range");
      },
      /*iterations=*/25, /*seed=*/7);
  EXPECT_FALSE(res.found_bug) << res.report();
}

TEST(ModelCheckScenario, PinnedPoolBudgetBackpressure) {
  // A budget of exactly one 64KiB bucket: whichever thread allocates first
  // exhausts it, and the other must recycle the released buffer instead of
  // allocating a second one. Under virtual time the backpressure timeout can
  // never fire while the holder can still run, so the graceful-degradation
  // overshoot path must stay untaken in every interleaving.
  const auto res = check::explore("pinned_pool_backpressure", [] {
    PinnedPoolConfig cfg;
    cfg.max_bytes = 64 * 1024;
    cfg.acquire_timeout = std::chrono::milliseconds(50);
    PinnedPool pool(cfg);
    check::thread t([&pool] {
      Tensor x = pool.acquire({16, 16}, DType::kF32);
      pool.release(std::move(x));
    });
    Tensor y = pool.acquire({16, 16}, DType::kF32);
    pool.release(std::move(y));
    t.join();
    check::expect(pool.alloc_count() == 1,
                  "the budget must force recycling, not a second allocation");
    check::expect(pool.overshoots() == 0,
                  "timed wait must not fire while the holder can run");
    check::expect(pool.idle_count() == 1, "the one buffer ends up pooled");
  });
  EXPECT_FALSE(res.found_bug) << res.report();
}

TEST(ModelCheckScenario, ResultCacheInvalidateRacesInsertAndLookup) {
  // The generation contract: an insert carrying a retired generation must
  // never be admitted, and entries from before an invalidate must read as
  // stale afterwards — regardless of how the updater thread's invalidate()
  // interleaves with the batcher thread's insert()/lookup(). This is the
  // contract gen_'s reload-inside-the-lock discipline exists to uphold.
  const auto res = check::explore("result_cache_invalidate", [] {
    serve::ResultCache cache(4);
    const std::uint64_t g0 = cache.generation();
    cache.insert(1, 10, g0);
    check::thread updater([&cache] { cache.invalidate(); });
    check::thread batcher([&cache, g0] {
      cache.insert(2, 20, g0);
      (void)cache.lookup(1);  // hit or miss depending on interleaving — both
                              // fine; must never crash or corrupt the LRU
    });
    updater.join();
    batcher.join();
    check::expect(!cache.lookup(1).has_value(),
                  "pre-invalidate entry must be stale afterwards");
    check::expect(!cache.lookup(2).has_value(),
                  "insert under a retired generation must not be admitted");
  });
  EXPECT_FALSE(res.found_bug) << res.report();
}

}  // namespace

#endif  // SALIENT_MODEL_CHECK_ENABLED
