// NN layer and model tests: parameter registration, Linear/BatchNorm
// semantics, conv-layer gradchecks through real bipartite levels, and the
// four paper architectures' forward shapes/probability outputs.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/functions.h"
#include "autograd/gradcheck.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/gat_conv.h"
#include "nn/gin_conv.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "nn/sage_conv.h"
#include "sampling/fast_sampler.h"
#include "graph/generator.h"
#include "tensor/ops.h"

namespace salient {
namespace {

namespace ag = autograd;
using nn::ModelConfig;

MfgLevel tiny_level() {
  // 2 destinations, 4 sources; dst0 <- {1,2}, dst1 <- {0,3}
  MfgLevel level;
  level.num_src = 4;
  level.num_dst = 2;
  level.indptr = std::make_shared<std::vector<std::int64_t>>(
      std::vector<std::int64_t>{0, 2, 4});
  level.indices = std::make_shared<std::vector<std::int64_t>>(
      std::vector<std::int64_t>{1, 2, 0, 3});
  return level;
}

TEST(Module, ParameterRegistrationAndCounts) {
  nn::Linear lin(3, 4, /*bias=*/true);
  const auto params = lin.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(lin.num_parameters(), 3 * 4 + 4);
  const auto named = lin.named_parameters();
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
  // handles share state with the module
  auto p = lin.parameters();
  p[0].data().fill_(0.0);
  EXPECT_DOUBLE_EQ(ops::sum_all(lin.parameters()[0].data()), 0.0);
}

TEST(Module, TrainModePropagatesToChildren) {
  ModelConfig mc{8, 16, 5, 3, 1};
  auto model = nn::make_model("gin", mc);
  model->train(false);
  EXPECT_FALSE(model->is_training());
  model->train(true);
  EXPECT_TRUE(model->is_training());
}

TEST(Linear, MatchesManualComputation) {
  nn::Linear lin(2, 3, true, 5);
  auto params = lin.parameters();
  Tensor w = params[0].data();  // [3,2]
  Tensor b = params[1].data();  // [3]
  Variable x(Tensor::from_vector<float>({1, 2}, {1, 2}));
  Tensor y = lin.forward(x).data();
  for (int j = 0; j < 3; ++j) {
    const float expect = w.at<float>(j, 0) * 1 + w.at<float>(j, 1) * 2 +
                         b.at<float>(j);
    EXPECT_NEAR(y.at<float>(0, j), expect, 1e-5);
  }
}

TEST(BatchNorm, NormalizesInTraining) {
  nn::BatchNorm1d bn(2);
  bn.train(true);
  Variable x(Tensor::from_vector<float>({1, 10, 3, 30, 5, 50}, {3, 2}));
  Tensor y = bn.forward(x).data();
  // Each column has ~0 mean and ~unit variance after normalization.
  for (int j = 0; j < 2; ++j) {
    double mean = 0, var = 0;
    for (int i = 0; i < 3; ++i) mean += y.at<float>(i, j);
    mean /= 3;
    for (int i = 0; i < 3; ++i) {
      var += std::pow(y.at<float>(i, j) - mean, 2);
    }
    var /= 3;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  nn::BatchNorm1d bn(1);
  bn.train(true);
  for (int i = 0; i < 200; ++i) {
    Variable x(Tensor::from_vector<float>({4.0f, 6.0f}, {2, 1}));
    bn.forward(x);
  }
  bn.train(false);
  Variable probe(Tensor::from_vector<float>({5.0f}, {1, 1}));
  // running mean converges to 5, running var to 2 (unbiased): output ~0.
  EXPECT_NEAR(bn.forward(probe).data().at<float>(0, 0), 0.0, 0.05);
}

TEST(SageConv, MeanAggregationPlusRoot) {
  nn::SageConv conv(2, 2, false, 3);
  MfgLevel level = tiny_level();
  Tensor x = Tensor::from_vector<float>({1, 0, 0, 1, 2, 2, -1, 1}, {4, 2});
  Variable out = conv.forward(Variable(x), level);
  ASSERT_EQ(out.data().size(0), 2);
  ASSERT_EQ(out.data().size(1), 2);
  // Compare against manual: out = W_l * mean + W_r * x_dst.
  auto params = conv.parameters();  // lin_l.weight, lin_r.weight
  Tensor wl = params[0].data(), wr = params[1].data();
  const float mean0[2] = {(0 + 2) / 2.0f, (1 + 2) / 2.0f};
  for (int j = 0; j < 2; ++j) {
    const float expect = wl.at<float>(j, 0) * mean0[0] +
                         wl.at<float>(j, 1) * mean0[1] +
                         wr.at<float>(j, 0) * 1 + wr.at<float>(j, 1) * 0;
    EXPECT_NEAR(out.data().at<float>(0, j), expect, 1e-5);
  }
}

TEST(Gradcheck, SageConvEndToEnd) {
  MfgLevel level = tiny_level();
  auto fn = [&level](const std::vector<Variable>& in) {
    // in: x, wl, wr — emulate the conv with explicit linear ops so we test
    // the same composition the layer uses.
    Variable agg = ag::spmm_mean(level.indptr, level.indices, in[0], 2);
    Variable root = ag::narrow_rows(in[0], 0, 2);
    Variable y = ag::add(ag::linear(agg, in[1], Variable()),
                         ag::linear(root, in[2], Variable()));
    return ag::nll_loss(ag::log_softmax(y),
                        Tensor::from_vector<std::int64_t>({0, 1}, {2}));
  };
  auto r = ag::gradcheck(
      fn, {Variable(Tensor::uniform({4, 3}, 1, -1, 1, DType::kF64), true),
           Variable(Tensor::uniform({2, 3}, 2, -1, 1, DType::kF64), true),
           Variable(Tensor::uniform({2, 3}, 3, -1, 1, DType::kF64), true)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GatConv, OutputShapeAndAttentionNormalization) {
  nn::GatConv conv(3, 4, false, 0.2, 7);
  MfgLevel level = tiny_level();
  Tensor x = Tensor::uniform({4, 3}, 9, -1, 1);
  Variable out = conv.forward(Variable(x), level);
  EXPECT_EQ(out.data().size(0), 2);
  EXPECT_EQ(out.data().size(1), 4);
  // With identical source projections, attention reduces to a plain mean of
  // neighbors+self: feed constant rows and verify the output matches any
  // single projected row (softmax of equal scores is uniform; weighted sum
  // of identical vectors is that vector).
  Tensor same = Tensor::zeros({4, 3});
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 3; ++j) same.at<float>(i, j) = static_cast<float>(j);
  Variable out2 = conv.forward(Variable(same), level);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(out2.data().at<float>(0, j), out2.data().at<float>(1, j),
                1e-5);
  }
}

TEST(Gradcheck, GatEdgeSoftmaxAggregate) {
  MfgLevel level = tiny_level();
  auto fn = [&level](const std::vector<Variable>& in) {
    Variable y = nn::gat_edge_softmax_aggregate(
        in[0], in[1], in[2], level.indptr, level.indices, 2, 0.2,
        /*heads=*/1);
    return ag::nll_loss(ag::log_softmax(y),
                        Tensor::from_vector<std::int64_t>({1, 0}, {2}));
  };
  auto r = ag::gradcheck(
      fn,
      {Variable(Tensor::uniform({4, 3}, 11, -1, 1, DType::kF64), true),
       Variable(Tensor::uniform({4, 1}, 12, -1, 1, DType::kF64), true),
       Variable(Tensor::uniform({2, 1}, 13, -1, 1, DType::kF64), true)},
      1e-5, 1e-5);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(Gradcheck, GatEdgeSoftmaxAggregateMultiHead) {
  // 2 heads of width 3: h is [4, 6], scores are [*, 2].
  MfgLevel level = tiny_level();
  auto fn = [&level](const std::vector<Variable>& in) {
    Variable y = nn::gat_edge_softmax_aggregate(
        in[0], in[1], in[2], level.indptr, level.indices, 2, 0.2,
        /*heads=*/2);
    return ag::nll_loss(ag::log_softmax(y),
                        Tensor::from_vector<std::int64_t>({1, 0}, {2}));
  };
  auto r = ag::gradcheck(
      fn,
      {Variable(Tensor::uniform({4, 6}, 14, -1, 1, DType::kF64), true),
       Variable(Tensor::uniform({4, 2}, 15, -1, 1, DType::kF64), true),
       Variable(Tensor::uniform({2, 2}, 16, -1, 1, DType::kF64), true)},
      1e-5, 1e-5);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GatConv, MultiHeadShapesAndSingleHeadEquivalence) {
  MfgLevel level = tiny_level();
  nn::GatConv multi(3, 4, false, 0.2, 7, /*heads=*/3);
  Tensor x = Tensor::uniform({4, 3}, 21, -1, 1);
  Variable out = multi.forward(Variable(x), level);
  EXPECT_EQ(out.data().size(0), 2);
  EXPECT_EQ(out.data().size(1), 12);  // heads * out_channels, concatenated
  // backward flows to every parameter
  Variable loss = nn::nll_loss(nn::log_softmax(out),
                               Tensor::from_vector<std::int64_t>({0, 1}, {2}));
  multi.zero_grad();
  loss.backward();
  for (const auto& p : multi.parameters()) {
    EXPECT_TRUE(p.grad().defined());
  }
  EXPECT_THROW(nn::GatConv(3, 4, false, 0.2, 7, 0), std::invalid_argument);
}

TEST(GinConv, SumAggregationThroughMlp) {
  auto mlp = std::make_shared<nn::GinMlp>(2, 4, 5);
  nn::GinConv conv(mlp);
  conv.train(false);  // freeze batch-norm statistics path
  MfgLevel level = tiny_level();
  Tensor x = Tensor::uniform({4, 2}, 19, -1, 1);
  Variable out = conv.forward(Variable(x), level);
  EXPECT_EQ(out.data().size(0), 2);
  EXPECT_EQ(out.data().size(1), 4);
  // GIN MLP ends in ReLU: outputs nonnegative.
  for (float v : out.data().span<float>()) EXPECT_GE(v, 0.0f);
}

// --- full architectures -----------------------------------------------------------

class ModelForwardTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelForwardTest, ProducesLogProbabilitiesOverBatch) {
  const std::string arch = GetParam();
  CsrGraph g = powerlaw_configuration(2000, 10.0, 2.5, 300, 23);
  std::vector<NodeId> batch;
  for (NodeId v = 0; v < 37; ++v) batch.push_back(v * 13);
  FastSampler sampler(g, {6, 4, 3});
  Mfg mfg = sampler.sample(batch);

  ModelConfig mc;
  mc.in_channels = 12;
  mc.hidden_channels = 16;
  mc.out_channels = 7;
  mc.num_layers = 3;
  auto model = nn::make_model(arch, mc);
  model->train(true);
  Tensor x = Tensor::uniform({mfg.num_input_nodes(), 12}, 29, -1, 1);
  Variable logp = model->forward(Variable(x), mfg);
  ASSERT_EQ(logp.data().size(0), 37);
  ASSERT_EQ(logp.data().size(1), 7);
  // rows are log-probabilities
  for (std::int64_t i = 0; i < 37; ++i) {
    double sum = 0;
    for (std::int64_t j = 0; j < 7; ++j) {
      sum += std::exp(logp.data().at<float>(i, j));
    }
    ASSERT_NEAR(sum, 1.0, 1e-4);
  }
  // backward produces gradients for every parameter
  Tensor y({37}, DType::kI64);
  Variable loss = nn::nll_loss(logp, y);
  model->zero_grad();
  loss.backward();
  for (const auto& p : model->parameters()) {
    EXPECT_TRUE(p.grad().defined());
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ModelForwardTest,
                         ::testing::Values("sage", "gat", "gin", "sage-ri"));

TEST(Models, FactoryRejectsUnknownArch) {
  ModelConfig mc{4, 8, 3, 2, 1};
  EXPECT_THROW(nn::make_model("gcnii", mc), std::invalid_argument);
  EXPECT_THROW(nn::make_model("sage", ModelConfig{0, 8, 3, 2, 1}),
               std::invalid_argument);
}

TEST(Models, LayerwiseSupportFlags) {
  ModelConfig mc{4, 8, 3, 2, 1};
  EXPECT_TRUE(nn::make_model("sage", mc)->supports_layerwise());
  EXPECT_TRUE(nn::make_model("gat", mc)->supports_layerwise());
  EXPECT_TRUE(nn::make_model("gin", mc)->supports_layerwise());
  EXPECT_FALSE(nn::make_model("sage-ri", mc)->supports_layerwise());
}

TEST(Models, DropoutSeedingMakesForwardDeterministic) {
  CsrGraph g = powerlaw_configuration(500, 8.0, 2.5, 100, 31);
  std::vector<NodeId> batch{1, 2, 3, 4, 5};
  FastSampler sampler(g, {4, 4});
  Mfg mfg = sampler.sample(batch, 5);
  ModelConfig mc{6, 8, 4, 2, 77};
  Tensor x = Tensor::uniform({mfg.num_input_nodes(), 6}, 37, -1, 1);

  auto m1 = nn::make_model("sage", mc);
  auto m2 = nn::make_model("sage", mc);
  Tensor y1 = m1->forward(Variable(x), mfg).data();
  Tensor y2 = m2->forward(Variable(x), mfg).data();
  EXPECT_TRUE(allclose(y1, y2));  // same seed, same dropout stream
}

TEST(Loss, CrossEntropyEqualsLogSoftmaxPlusNll) {
  Variable logits(Tensor::uniform({5, 4}, 41, -2, 2), true);
  Tensor target = Tensor::from_vector<std::int64_t>({0, 1, 2, 3, 0}, {5});
  Variable a = nn::cross_entropy(logits, target);
  Variable b = nn::nll_loss(nn::log_softmax(logits), target);
  EXPECT_NEAR(a.data().at<float>(0), b.data().at<float>(0), 1e-6);
}

}  // namespace
}  // namespace salient
