// Tests for the observability subsystem (src/obs/): concurrent span
// recording, Chrome trace export validity, the metrics registry, histogram
// bucketing, the PhaseTimer->registry bridge, and the compile-time
// SALIENT_TRACING gate (this file compiles and passes in both ON and OFF
// configurations).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/json_lite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/timeline.h"
#include "util/timer.h"

namespace salient {
namespace {

namespace json = obs::json;

/// Enable tracing for one test; leave the global recorder clean afterwards.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceRecorder::global().reset();
    obs::TraceRecorder::global().enable(true);
  }
  void TearDown() override {
    obs::TraceRecorder::global().enable(false);
    obs::TraceRecorder::global().reset();
  }
};

std::vector<obs::CollectedEvent> events_named(
    const std::vector<obs::CollectedEvent>& all, const std::string& name) {
  std::vector<obs::CollectedEvent> out;
  for (const auto& ce : all) {
    if (ce.event.name == name) out.push_back(ce);
  }
  return out;
}

TEST_F(ObsTest, ConcurrentSpanEmissionIsCompleteAndConsistent) {
  if constexpr (!obs::kTracingCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (SALIENT_TRACING=OFF)";
  }
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;

  const double t0 = obs::TraceRecorder::global().now_us();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      SALIENT_TRACE_THREAD_NAME("worker-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        SALIENT_TRACE_SCOPE_ARG("t.span", i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double t1 = obs::TraceRecorder::global().now_us();

  const auto all = obs::TraceRecorder::global().collect();
  const auto spans = events_named(all, "t.span");
  ASSERT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(obs::TraceRecorder::global().dropped(), 0u);

  // collect() promises a globally time-sorted view on the common timebase.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].event.ts_us, all[i].event.ts_us);
  }

  // Every span is well-formed and within the emission window; per thread,
  // all spans landed on that thread's buffer and the arg sequence covers
  // [0, kSpansPerThread).
  std::map<int, std::vector<std::int64_t>> args_by_tid;
  for (const auto& ce : spans) {
    EXPECT_EQ(ce.event.kind, obs::EventKind::kComplete);
    EXPECT_GE(ce.event.dur_us, 0.0);
    EXPECT_GE(ce.event.ts_us, t0);
    EXPECT_LE(ce.event.ts_us + ce.event.dur_us, t1);
    EXPECT_TRUE(ce.thread_name.rfind("worker-", 0) == 0) << ce.thread_name;
    args_by_tid[ce.tid].push_back(ce.event.arg);
  }
  ASSERT_EQ(args_by_tid.size(), static_cast<std::size_t>(kThreads));
  for (auto& [tid, args] : args_by_tid) {
    ASSERT_EQ(args.size(), static_cast<std::size_t>(kSpansPerThread));
    std::sort(args.begin(), args.end());
    for (int i = 0; i < kSpansPerThread; ++i) EXPECT_EQ(args[i], i);
  }
}

TEST_F(ObsTest, NestedSpansAreProperlyContained) {
  if constexpr (!obs::kTracingCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (SALIENT_TRACING=OFF)";
  }
  {
    SALIENT_TRACE_SCOPE("outer");
    SALIENT_TRACE_SCOPE("inner");
  }
  const auto all = obs::TraceRecorder::global().collect();
  const auto outer = events_named(all, "outer");
  const auto inner = events_named(all, "inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_LE(outer[0].event.ts_us, inner[0].event.ts_us);
  EXPECT_LE(inner[0].event.ts_us + inner[0].event.dur_us,
            outer[0].event.ts_us + outer[0].event.dur_us + 1e-3);
}

TEST_F(ObsTest, AsyncSpansMatchAcrossThreads) {
  if constexpr (!obs::kTracingCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (SALIENT_TRACING=OFF)";
  }
  SALIENT_TRACE_ASYNC_BEGIN("lifetime", 42);
  std::thread([] { SALIENT_TRACE_ASYNC_END("lifetime", 42); }).join();
  const auto all = obs::TraceRecorder::global().collect();
  const auto evs = events_named(all, "lifetime");
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].event.kind, obs::EventKind::kAsyncBegin);
  EXPECT_EQ(evs[1].event.kind, obs::EventKind::kAsyncEnd);
  EXPECT_EQ(evs[0].event.id, 42u);
  EXPECT_EQ(evs[1].event.id, 42u);
  EXPECT_NE(evs[0].tid, evs[1].tid);
  EXPECT_LE(evs[0].event.ts_us, evs[1].event.ts_us);
}

/// Shared validation: `text` is JSON and every traceEvents element carries
/// the keys the Chrome trace viewer requires.
void expect_valid_chrome_trace(const std::string& text,
                               std::size_t min_events) {
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(text, doc, error)) << error;
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GE(events->array.size(), min_events);
  for (const json::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    for (const char* key : {"ph", "ts", "pid", "tid", "name"}) {
      EXPECT_NE(e.find(key), nullptr) << "missing key " << key;
    }
  }
}

TEST_F(ObsTest, ChromeExportIsValidJsonWithRequiredKeys) {
  SALIENT_TRACE_THREAD_NAME("main");
  {
    SALIENT_TRACE_SCOPE_ARG("escaped \"name\" with \\ and \n", 7);
  }
  SALIENT_TRACE_INSTANT("marker");
  SALIENT_TRACE_ASYNC_BEGIN("abatch", 3);
  SALIENT_TRACE_ASYNC_END("abatch", 3);
  SALIENT_TRACE_COUNTER("depth", 5);
  std::ostringstream os;
  obs::TraceRecorder::global().write_chrome_trace(os);
  // With tracing compiled out only metadata remains — still valid JSON.
  expect_valid_chrome_trace(os.str(), obs::kTracingCompiledIn ? 6u : 1u);
}

TEST_F(ObsTest, RuntimeDisabledRecorderEmitsNothing) {
  obs::TraceRecorder::global().enable(false);
  {
    SALIENT_TRACE_SCOPE("quiet");
  }
  SALIENT_TRACE_INSTANT("quiet.marker");
  EXPECT_TRUE(obs::TraceRecorder::global().collect().empty());
}

TEST(ObsCompileGate, MacrosAreNoOpsWhenCompiledOut) {
  // In the SALIENT_TRACING=OFF configuration the macros must not record
  // even while the recorder is enabled; in the ON configuration this test
  // instead asserts that they do.
  auto& rec = obs::TraceRecorder::global();
  rec.reset();
  rec.enable(true);
  {
    SALIENT_TRACE_SCOPE("gate.span");
  }
  SALIENT_TRACE_INSTANT("gate.instant");
  SALIENT_TRACE_COUNTER("gate.counter", 1);
  const std::size_t n = rec.collect().size();
  rec.enable(false);
  rec.reset();
  if constexpr (obs::kTracingCompiledIn) {
    EXPECT_EQ(n, 3u);
  } else {
    EXPECT_EQ(n, 0u);
  }
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  obs::Histogram h({1.0, 10.0, 100.0});
  // A value lands in the first bucket whose upper bound is >= value.
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (inclusive upper bound)
  h.observe(1.001);  // bucket 1
  h.observe(10.0);   // bucket 1
  h.observe(99.9);   // bucket 2
  h.observe(100.5);  // overflow (+Inf) bucket
  h.observe(1e9);    // overflow (+Inf) bucket
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 2);
  EXPECT_EQ(h.total_count(), 7);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 10.0 + 99.9 + 100.5 + 1e9, 1e-6);
  h.reset();
  EXPECT_EQ(h.total_count(), 0);
  EXPECT_EQ(h.bucket_count(3), 0);

  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({10.0, 1.0}), std::invalid_argument);
}

TEST(ObsMetrics, HistogramQuantileInterpolates) {
  obs::Histogram h({10.0, 20.0, 40.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  // 10 values uniform in (0,10], 10 in (10,20]: the median sits at the
  // bucket boundary and p75 lands mid-way through the second bucket.
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  EXPECT_NEAR(h.quantile(0.5), 10.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.75), 15.0, 1e-9);
  EXPECT_NEAR(h.quantile(1.0), 20.0, 1e-9);
  EXPECT_GT(h.quantile(0.1), 0.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
  // Out-of-range q clamps rather than throwing.
  EXPECT_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
  // Overflow values clamp to the last finite bound.
  obs::Histogram o({10.0});
  o.observe(1e9);
  EXPECT_EQ(o.quantile(0.5), 10.0);
}

TEST(ObsMetrics, RegistryInstrumentsAndDumps) {
  auto& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("test.counter");
  c.reset();
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4);
  EXPECT_EQ(&reg.counter("test.counter"), &c);  // same instrument back

  obs::Gauge& g = reg.gauge("test.gauge");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);

  obs::Histogram& h = reg.histogram("test.histo", {1.0, 2.0});
  h.reset();
  h.observe(1.5);

  // Re-registering a name as a different kind is a programming error.
  EXPECT_THROW(reg.gauge("test.counter"), std::invalid_argument);
  EXPECT_THROW(reg.counter("test.gauge"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("test.counter", {1.0}), std::invalid_argument);

  const std::string text = reg.dump_text();
  EXPECT_NE(text.find("test.counter 4"), std::string::npos) << text;
  EXPECT_NE(text.find("test.gauge 3"), std::string::npos) << text;
  EXPECT_NE(text.find("test.histo"), std::string::npos) << text;

  std::ostringstream os;
  reg.write_json(os);
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(os.str(), doc, error)) << error;
  const json::Value* counter = doc.find("test.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->number, 4.0);
  const json::Value* histo = doc.find("test.histo");
  ASSERT_NE(histo, nullptr);
  ASSERT_TRUE(histo->is_object());
  EXPECT_EQ(histo->find("count")->number, 1.0);
}

TEST(ObsMetrics, ConcurrentCounterUpdatesDontLose) {
  auto& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("test.concurrent");
  c.reset();
  obs::Gauge& g = reg.gauge("test.concurrent_gauge");
  g.reset();
  constexpr int kThreads = 8, kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &g] {
      for (int i = 0; i < kIters; ++i) {
        c.add();
        g.add(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kIters);
  EXPECT_DOUBLE_EQ(g.value(), kThreads * kIters);
}

TEST(ObsMetrics, PhaseTimerIsAViewOverTheRegistry) {
  auto& reg = obs::Registry::global();
  obs::Gauge& sample_s = reg.gauge("phase.sample.blocking_s");
  obs::Histogram& sample_ms = reg.histogram(
      "phase.sample.block_ms", {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0});
  const double before_s = sample_s.value();
  const std::int64_t before_n = sample_ms.total_count();

  PhaseTimer timer;
  timer.add(Phase::kSample, 0.25);
  timer.add(Phase::kSample, 0.5);

  EXPECT_DOUBLE_EQ(timer.total(Phase::kSample), 0.75);  // per-instance view
  EXPECT_NEAR(sample_s.value() - before_s, 0.75, 1e-9);  // global view
  EXPECT_EQ(sample_ms.total_count() - before_n, 2);
}

TEST(ObsJson, ParserAcceptsAndRejects) {
  json::Value v;
  std::string err;
  EXPECT_TRUE(json::parse(R"({"a":[1,2.5,-3e2],"b":"x\n","c":null,"d":true})",
                          v, err))
      << err;
  EXPECT_EQ(v.find("a")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("a")->array[2].number, -300.0);
  EXPECT_EQ(v.find("b")->string, "x\n");

  EXPECT_FALSE(json::parse("{", v, err));
  EXPECT_FALSE(json::parse("[1,]", v, err));
  EXPECT_FALSE(json::parse("{\"a\":1} trailing", v, err));
  EXPECT_FALSE(json::parse("\"unterminated", v, err));
}

TEST(ObsTimeline, SimTimelineExportsChromeTrace) {
  sim::Timeline tl;
  tl.add("worker0", "sample", 0, 0.0, 0.5);
  tl.add("worker0", "slice", 0, 0.5, 0.8);
  tl.add("pcie0", "xfer", 0, 0.8, 1.0);
  tl.add("gpu0", "train", 0, 1.0, 1.6);
  std::ostringstream os;
  tl.write_chrome_trace(os);
  const std::string text = os.str();

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(text, doc, error)) << error;
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t spans = 0, lanes = 0;
  for (const json::Value& e : events->array) {
    for (const char* key : {"ph", "ts", "pid", "tid", "name"}) {
      EXPECT_NE(e.find(key), nullptr);
    }
    if (e.find("ph")->string == "X") ++spans;
    if (e.find("ph")->string == "M" &&
        e.find("name")->string == "thread_name") {
      ++lanes;
    }
  }
  EXPECT_EQ(spans, 4u);
  EXPECT_EQ(lanes, 3u);  // worker0, pcie0, gpu0

  // The simulated makespan survives the unit conversion (seconds -> us).
  const json::Value& last = events->array.back();
  EXPECT_NEAR(last.find("ts")->number + last.find("dur")->number, 1.6e6, 1.0);
}

}  // namespace
}  // namespace salient
