// Optimizer tests: Adam against a hand-computed reference trajectory,
// convergence on a quadratic, SGD with momentum semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "autograd/functions.h"
#include "optim/adam.h"
#include "optim/sgd.h"
#include "tensor/ops.h"

namespace salient {
namespace {

namespace ag = autograd;

TEST(Adam, FirstStepMatchesClosedForm) {
  // With constant gradient g on the first step: m=(1-b1)g, v=(1-b2)g^2,
  // mhat=g, vhat=g^2 => update = -lr * g/(|g|+eps) = -lr*sign(g).
  Variable p(Tensor::from_vector<float>({1.0f, -2.0f}, {2}), true);
  p.accumulate_grad(Tensor::from_vector<float>({0.5f, -3.0f}, {2}));
  optim::Adam adam({p}, /*lr=*/0.1);
  adam.step();
  EXPECT_NEAR(p.data().at<float>(0), 1.0f - 0.1f, 1e-5);
  EXPECT_NEAR(p.data().at<float>(1), -2.0f + 0.1f, 1e-5);
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(Adam, TwoStepReferenceTrajectory) {
  // Scalar parameter, gradients g1=1, g2=2; verify against the textbook
  // recurrence computed by hand in double precision.
  Variable p(Tensor::from_vector<float>({0.0f}, {1}), true);
  optim::Adam adam({p}, 0.01, 0.9, 0.999, 1e-8);
  const double g[2] = {1.0, 2.0};
  double m = 0, v = 0, x = 0;
  for (int t = 1; t <= 2; ++t) {
    p.zero_grad();
    p.accumulate_grad(Tensor::full({1}, g[t - 1]));
    adam.step();
    m = 0.9 * m + 0.1 * g[t - 1];
    v = 0.999 * v + 0.001 * g[t - 1] * g[t - 1];
    const double mhat = m / (1 - std::pow(0.9, t));
    const double vhat = v / (1 - std::pow(0.999, t));
    x -= 0.01 * mhat / (std::sqrt(vhat) + 1e-8);
    EXPECT_NEAR(p.data().at<float>(0), x, 1e-6) << "step " << t;
  }
}

TEST(Adam, SkipsParametersWithoutGrad) {
  Variable a(Tensor::ones({2}), true);
  Variable b(Tensor::ones({2}), true);
  a.accumulate_grad(Tensor::ones({2}));
  optim::Adam adam({a, b}, 0.1);
  adam.step();
  EXPECT_LT(a.data().at<float>(0), 1.0f);
  EXPECT_FLOAT_EQ(b.data().at<float>(0), 1.0f);  // untouched
}

TEST(Adam, MinimizesQuadratic) {
  // minimize ||x - c||^2 via autograd
  Variable x(Tensor::zeros({3}), true);
  Tensor c = Tensor::from_vector<float>({1.0f, -2.0f, 0.5f}, {3});
  optim::Adam adam({x}, 0.05);
  for (int it = 0; it < 500; ++it) {
    x.zero_grad();
    // grad of ||x-c||^2 = 2(x-c)
    x.accumulate_grad(ops::scale(ops::sub(x.data(), c), 2.0));
    adam.step();
  }
  EXPECT_TRUE(allclose(x.data(), c, 1e-2, 1e-2));
}

TEST(Adam, WeightDecayPullsTowardZero) {
  Variable x(Tensor::full({1}, 5.0), true);
  optim::Adam adam({x}, 0.1, 0.9, 0.999, 1e-8, /*weight_decay=*/1.0);
  for (int it = 0; it < 300; ++it) {
    x.zero_grad();
    x.accumulate_grad(Tensor::zeros({1}));  // only decay acts
    adam.step();
  }
  EXPECT_NEAR(x.data().at<float>(0), 0.0, 0.05);
}

TEST(Sgd, PlainStepIsAxpy) {
  Variable p(Tensor::from_vector<float>({1, 2}, {2}), true);
  p.accumulate_grad(Tensor::from_vector<float>({10, -10}, {2}));
  optim::Sgd sgd({p}, 0.01);
  sgd.step();
  EXPECT_FLOAT_EQ(p.data().at<float>(0), 0.9f);
  EXPECT_FLOAT_EQ(p.data().at<float>(1), 2.1f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Variable p(Tensor::zeros({1}), true);
  optim::Sgd sgd({p}, 0.1, 0.9);
  // constant gradient 1: velocity v_t = (1-0.9^t)/(1-0.9)
  double v = 0, x = 0;
  for (int t = 0; t < 5; ++t) {
    p.zero_grad();
    p.accumulate_grad(Tensor::ones({1}));
    sgd.step();
    v = 0.9 * v + 1.0;
    x -= 0.1 * v;
    EXPECT_NEAR(p.data().at<float>(0), x, 1e-5);
  }
}

TEST(Optimizer, ZeroGradClearsAll) {
  Variable p(Tensor::ones({2}), true);
  p.accumulate_grad(Tensor::ones({2}));
  optim::Sgd sgd({p}, 0.1);
  sgd.zero_grad();
  EXPECT_FALSE(p.grad().defined());
}

TEST(Adam, TrainsTinyClassifierToLowLoss) {
  // Logistic-regression-style smoke test through the full autograd stack.
  const std::int64_t n = 64, d = 8, c = 3;
  Tensor x = Tensor::uniform({n, d}, 3, -1, 1);
  Tensor y({n}, DType::kI64);
  // linearly separable-ish labels from a random teacher
  Tensor teacher = Tensor::uniform({c, d}, 4, -1, 1);
  Tensor scores = ops::matmul(x, teacher, false, true);
  Tensor t_arg = ops::argmax_rows(scores);
  std::memcpy(y.raw(), t_arg.raw(), y.nbytes());

  Variable w(Tensor::zeros({c, d}), true);
  Variable b(Tensor::zeros({c}), true);
  optim::Adam adam({w, b}, 0.05);
  double first_loss = 0, last_loss = 0;
  for (int it = 0; it < 200; ++it) {
    Variable logits = ag::linear(Variable(x), w, b);
    Variable loss = ag::nll_loss(ag::log_softmax(logits), y);
    if (it == 0) first_loss = loss.data().at<float>(0);
    last_loss = loss.data().at<float>(0);
    w.zero_grad();
    b.zero_grad();
    loss.backward();
    adam.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.3);
}

}  // namespace
}  // namespace salient
