// Batch-preparation tests: slicing kernels (serial == parallel == reference,
// f16 paths), pinned pool recycling, MFG serialization round trip, and both
// loaders delivering exactly the right batches with correct contents.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <numeric>
#include <set>

#include "graph/dataset.h"
#include "prep/baseline_loader.h"
#include "prep/batch.h"
#include "prep/feature_cache.h"
#include "prep/pinned_pool.h"
#include "prep/salient_loader.h"
#include "prep/slicing.h"
#include "sampling/fast_sampler.h"
#include "tensor/quantize.h"
#include "util/half.h"

namespace salient {
namespace {

Dataset& small_dataset() {
  static Dataset ds = [] {
    DatasetConfig c;
    c.name = "prep-test";
    c.num_nodes = 4000;
    c.feature_dim = 24;
    c.num_classes = 6;
    c.avg_degree = 8;
    c.seed = 77;
    return generate_dataset(c);
  }();
  return ds;
}

TEST(Slicing, SerialEqualsParallelEqualsReference) {
  const Dataset& ds = small_dataset();
  std::vector<NodeId> ids{5, 100, 7, 3999, 0, 100};  // repeats allowed
  Tensor serial({static_cast<std::int64_t>(ids.size()), ds.feature_dim},
                DType::kF16);
  Tensor parallel(serial.shape(), DType::kF16);
  slice_rows_serial(ds.features, ids, serial);
  ThreadPool pool(3);
  slice_rows_parallel(ds.features, ids, parallel, pool);
  EXPECT_TRUE(allclose(serial, parallel));
  for (std::size_t k = 0; k < ids.size(); ++k) {
    for (std::int64_t j = 0; j < ds.feature_dim; ++j) {
      ASSERT_EQ(serial.at<Half>(static_cast<std::int64_t>(k), j).bits,
                ds.features.at<Half>(ids[k], j).bits);
    }
  }
}

TEST(Slicing, ValidatesShapes) {
  const Dataset& ds = small_dataset();
  std::vector<NodeId> ids{1, 2};
  Tensor wrong({2, 3}, DType::kF16);
  EXPECT_THROW(slice_rows_serial(ds.features, ids, wrong),
               std::runtime_error);
  std::vector<NodeId> bad{999999};
  Tensor out({1, ds.feature_dim}, DType::kF16);
  EXPECT_THROW(slice_rows_serial(ds.features, bad, out), std::out_of_range);
}

TEST(Slicing, LabelsMatch) {
  const Dataset& ds = small_dataset();
  std::vector<NodeId> ids{10, 20, 30};
  Tensor out({3}, DType::kI64);
  slice_labels(ds.labels, ids, out);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(out.at<std::int64_t>(k), ds.labels.at<std::int64_t>(ids[k]));
  }
}

TEST(PinnedPool, RecyclesBuffers) {
  PinnedPool pool;
  Tensor a = pool.acquire({100, 8}, DType::kF32);
  EXPECT_TRUE(a.pinned());
  EXPECT_EQ(pool.alloc_count(), 1u);
  const void* ptr = a.raw();
  pool.release(std::move(a));
  EXPECT_EQ(pool.idle_count(), 1u);
  Tensor b = pool.acquire({99, 8}, DType::kF32);  // same 64KiB bucket
  EXPECT_EQ(b.raw(), ptr);  // recycled
  EXPECT_EQ(pool.alloc_count(), 1u);
  Tensor c = pool.acquire({100, 8}, DType::kF32);  // pool empty -> new alloc
  EXPECT_EQ(pool.alloc_count(), 2u);
  (void)c;
}

TEST(PinnedPool, IgnoresUnpinnedRelease) {
  PinnedPool pool;
  pool.release(Tensor({4}, DType::kF32, /*pinned=*/false));
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST(MfgSerialization, RoundTripsExactly) {
  const Dataset& ds = small_dataset();
  FastSampler sampler(ds.graph, {5, 3});
  std::vector<NodeId> batch{1, 2, 3, 4, 5, 6, 7, 8};
  Mfg mfg = sampler.sample(batch, 9);
  auto blob = serialize_mfg(mfg);
  Mfg copy = deserialize_mfg(blob);
  EXPECT_TRUE(copy.valid());
  EXPECT_EQ(copy.batch_size, mfg.batch_size);
  EXPECT_EQ(copy.n_ids, mfg.n_ids);
  ASSERT_EQ(copy.levels.size(), mfg.levels.size());
  for (std::size_t i = 0; i < mfg.levels.size(); ++i) {
    EXPECT_EQ(copy.levels[i].num_src, mfg.levels[i].num_src);
    EXPECT_EQ(copy.levels[i].num_dst, mfg.levels[i].num_dst);
    EXPECT_EQ(*copy.levels[i].indptr, *mfg.levels[i].indptr);
    EXPECT_EQ(*copy.levels[i].indices, *mfg.levels[i].indices);
  }
  // truncation is detected
  blob.resize(blob.size() / 2);
  EXPECT_THROW(deserialize_mfg(blob), std::runtime_error);
}

/// Shared loader validation: all batches delivered exactly once, contents
/// (MFG, features, labels) match an independent re-computation.
template <class Loader>
void check_loader(int num_workers, bool expect_ordered) {
  const Dataset& ds = small_dataset();
  LoaderConfig cfg;
  cfg.batch_size = 128;
  cfg.fanouts = {4, 3};
  cfg.num_workers = num_workers;
  cfg.seed = 99;
  cfg.shuffle = true;
  Loader loader(ds, ds.train_idx, cfg);

  const auto expected_batches = static_cast<std::int64_t>(
      (ds.train_idx.size() + 127) / 128);
  EXPECT_EQ(loader.num_batches(), expected_batches);

  std::set<std::int64_t> seen;
  std::int64_t last = -1;
  std::int64_t total_nodes = 0;
  while (auto batch = loader.next()) {
    ASSERT_TRUE(batch->mfg.valid());
    ASSERT_TRUE(seen.insert(batch->index).second) << "duplicate batch";
    if (expect_ordered) {
      ASSERT_EQ(batch->index, last + 1);
      last = batch->index;
    }
    // features were sliced from the right rows
    ASSERT_EQ(batch->x.size(0), batch->mfg.num_input_nodes());
    ASSERT_EQ(batch->x.size(1), ds.feature_dim);
    for (std::int64_t k = 0; k < std::min<std::int64_t>(5, batch->x.size(0));
         ++k) {
      const NodeId src = batch->mfg.n_ids[static_cast<std::size_t>(k)];
      for (std::int64_t j = 0; j < ds.feature_dim; ++j) {
        ASSERT_EQ(batch->x.template at<Half>(k, j).bits,
                  ds.features.at<Half>(src, j).bits);
      }
    }
    // labels match the batch nodes
    ASSERT_EQ(batch->y.size(0), batch->mfg.batch_size);
    for (std::int64_t k = 0; k < batch->y.size(0); ++k) {
      const NodeId v = batch->mfg.n_ids[static_cast<std::size_t>(k)];
      ASSERT_EQ(batch->y.template at<std::int64_t>(k), ds.labels.at<std::int64_t>(v));
    }
    total_nodes += batch->mfg.batch_size;
    loader.recycle(std::move(*batch));
  }
  EXPECT_EQ(static_cast<std::size_t>(total_nodes), ds.train_idx.size());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(expected_batches));
}

TEST(SalientLoader, DeliversAllBatchesOneWorker) {
  check_loader<SalientLoader>(1, /*expect_ordered=*/true);
}

TEST(SalientLoader, DeliversAllBatchesManyWorkers) {
  check_loader<SalientLoader>(4, /*expect_ordered=*/false);
}

TEST(BaselineLoader, DeliversAllBatchesInOrder) {
  check_loader<BaselineLoader>(1, /*expect_ordered=*/true);
  check_loader<BaselineLoader>(3, /*expect_ordered=*/true);
}

TEST(Loaders, SameSeedSameBatchesAcrossImplementations) {
  // With per-batch seeding, the set of batch node lists must be identical
  // across loaders and worker counts (sampling differs: different sampler
  // RNG types — but node partitioning must match exactly).
  const Dataset& ds = small_dataset();
  LoaderConfig cfg;
  cfg.batch_size = 256;
  cfg.fanouts = {3};
  cfg.seed = 123;
  cfg.num_workers = 2;

  auto collect = [&](auto& loader) {
    std::map<std::int64_t, std::vector<NodeId>> by_index;
    while (auto b = loader.next()) {
      std::vector<NodeId> nodes(
          b->mfg.n_ids.begin(),
          b->mfg.n_ids.begin() + b->mfg.batch_size);
      by_index[b->index] = std::move(nodes);
      loader.recycle(std::move(*b));
    }
    return by_index;
  };
  SalientLoader s1(ds, ds.train_idx, cfg);
  auto a = collect(s1);
  BaselineLoader b1(ds, ds.train_idx, cfg);
  auto b = collect(b1);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [idx, nodes] : a) {
    ASSERT_EQ(nodes, b.at(idx)) << "batch " << idx;
  }
}

TEST(SalientLoader, EarlyDestructionDoesNotDeadlock) {
  const Dataset& ds = small_dataset();
  LoaderConfig cfg;
  cfg.batch_size = 64;
  cfg.fanouts = {4, 4};
  cfg.num_workers = 2;
  cfg.queue_capacity = 2;
  {
    SalientLoader loader(ds, ds.train_idx, cfg);
    auto b = loader.next();  // consume one, then abandon the epoch
    ASSERT_TRUE(b.has_value());
  }  // destructor must join workers without hanging
  SUCCEED();
}

TEST(SalientLoader, SharedPoolIsReusedAcrossEpochs) {
  const Dataset& ds = small_dataset();
  auto pool = std::make_shared<PinnedPool>();
  LoaderConfig cfg;
  cfg.batch_size = 512;
  cfg.fanouts = {4};
  for (int epoch = 0; epoch < 3; ++epoch) {
    cfg.seed = 100 + static_cast<unsigned>(epoch);
    SalientLoader loader(ds, ds.train_idx, cfg, pool);
    while (auto b = loader.next()) loader.recycle(std::move(*b));
  }
  // second and third epochs should have mostly recycled buffers
  EXPECT_LT(pool->alloc_count(), 3u * 4u);
  EXPECT_GT(pool->idle_count(), 0u);
}

// --- device feature cache + cache-aware transfer plans ----------------------

Mfg cache_test_mfg(std::uint64_t seed = 5) {
  const Dataset& ds = small_dataset();
  std::vector<NodeId> batch;
  for (NodeId v = 0; v < 96; ++v) {
    batch.push_back((v * 37) % ds.graph.num_nodes());
  }
  FastSampler sampler(ds.graph, {6, 4});
  return sampler.sample(batch, seed);
}

TEST(FeatureCache, CapacityZeroAlwaysMisses) {
  const Dataset& ds = small_dataset();
  const FeatureCache cache(ds, 0);
  const Mfg mfg = cache_test_mfg();
  const CachePlan plan = plan_cached_batch(mfg, cache);
  const auto n = static_cast<std::int64_t>(mfg.n_ids.size());
  ASSERT_EQ(static_cast<std::int64_t>(plan.from_cache.size()), n);
  EXPECT_EQ(plan.num_missing, n);
  EXPECT_DOUBLE_EQ(plan.hit_rate(), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_FALSE(plan.from_cache[static_cast<std::size_t>(i)]);
    // Missing rows are numbered densely in input order.
    EXPECT_EQ(plan.source[static_cast<std::size_t>(i)], i);
  }
}

TEST(FeatureCache, FullCapacityAlwaysHits) {
  const Dataset& ds = small_dataset();
  const FeatureCache cache(ds, ds.graph.num_nodes());
  const Mfg mfg = cache_test_mfg();
  const CachePlan plan = plan_cached_batch(mfg, cache);
  EXPECT_EQ(plan.num_missing, 0);
  EXPECT_DOUBLE_EQ(plan.hit_rate(), 1.0);
  for (std::size_t i = 0; i < mfg.n_ids.size(); ++i) {
    ASSERT_TRUE(plan.from_cache[i]);
    EXPECT_EQ(plan.source[i], cache.slot_of(mfg.n_ids[i]));
  }
}

TEST(FeatureCache, HitRateIsMonotoneInCapacity) {
  // The cache is degree-ordered and static, so a larger capacity caches a
  // superset of nodes: the hit rate on any fixed batch cannot decrease.
  const Dataset& ds = small_dataset();
  const Mfg mfg = cache_test_mfg();
  double prev = -1.0;
  for (const std::int64_t capacity : {0, 100, 500, 2000, 4000}) {
    const FeatureCache cache(ds, capacity);
    const double rate = plan_cached_batch(mfg, cache).hit_rate();
    EXPECT_GE(rate, prev) << "capacity " << capacity;
    prev = rate;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // capacity == |V| caches everything
}

TEST(FeatureCache, SliceMissingRowsMatchesNaiveSlice) {
  const Dataset& ds = small_dataset();
  const FeatureCache cache(ds, 700);
  const Mfg mfg = cache_test_mfg();
  const CachePlan plan = plan_cached_batch(mfg, cache);
  ASSERT_GT(plan.num_missing, 0);
  ASSERT_LT(plan.num_missing, static_cast<std::int64_t>(mfg.n_ids.size()));

  Tensor out({plan.num_missing, ds.feature_dim}, DType::kF16);
  slice_missing_rows(ds, mfg, plan, out);
  for (std::size_t i = 0; i < mfg.n_ids.size(); ++i) {
    if (plan.from_cache[i]) continue;
    const std::int64_t row = plan.source[i];
    for (std::int64_t j = 0; j < ds.feature_dim; ++j) {
      ASSERT_EQ(out.at<Half>(row, j).bits,
                ds.features.at<Half>(mfg.n_ids[i], j).bits)
          << "missing row " << row << " col " << j;
    }
  }
}

// --- wire feature formats (stage_feature_rows) -------------------------------

TEST(FeatureWire, StagesEachWireDtypeCorrectly) {
  const Dataset& ds = small_dataset();  // f16 feature store
  const std::vector<NodeId> ids{5, 100, 7, 3999, 0, 100};
  const std::int64_t n = static_cast<std::int64_t>(ids.size());
  PinnedPool pool;

  // Same-dtype wire: bitwise equal to a plain slice.
  {
    PreparedBatch b;
    stage_feature_rows(ds.features, ids, DType::kF16, pool, b);
    Tensor want({n, ds.feature_dim}, DType::kF16);
    slice_rows_serial(ds.features, ids, want);
    ASSERT_EQ(b.x.dtype(), DType::kF16);
    EXPECT_EQ(std::memcmp(b.x.raw(), want.raw(), want.nbytes()), 0);
    EXPECT_FALSE(b.x_scale.defined());
    release_batch_buffers(pool, std::move(b));
  }
  // Decompressed f32 wire: every element equals the f16 store value.
  {
    PreparedBatch b;
    stage_feature_rows(ds.features, ids, DType::kF32, pool, b);
    ASSERT_EQ(b.x.dtype(), DType::kF32);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < ds.feature_dim; ++j) {
        ASSERT_EQ(b.x.at<float>(i, j),
                  half_to_float(ds.features.at<Half>(ids[i], j)))
            << "row " << i << " col " << j;
      }
    }
    release_batch_buffers(pool, std::move(b));
  }
  // Quantized wire: dequantizes back within the per-row affine bound.
  {
    PreparedBatch b;
    stage_feature_rows(ds.features, ids, DType::kInt8Q, pool, b);
    ASSERT_EQ(b.x.dtype(), DType::kInt8Q);
    ASSERT_TRUE(b.x_scale.defined());
    ASSERT_TRUE(b.x_zero.defined());
    const Tensor back = ops::dequantize_rows(b.x, b.x_scale, b.x_zero);
    for (std::int64_t i = 0; i < n; ++i) {
      const float bound = b.x_scale.at<float>(i) * 0.5f + 1e-6f;
      for (std::int64_t j = 0; j < ds.feature_dim; ++j) {
        ASSERT_NEAR(back.at<float>(i, j),
                    half_to_float(ds.features.at<Half>(ids[i], j)), bound)
            << "row " << i << " col " << j;
      }
    }
    release_batch_buffers(pool, std::move(b));
  }
}

TEST(FeatureWire, CompressionCutsFeatureBytes) {
  // The acceptance numbers of the compressed-transport work: relative to the
  // f32 wire, f16 halves the staged feature bytes (>= 1.9x) and int8q cuts
  // them ~4x (>= 3.4x with the per-row scale/zero sidecars included).
  Tensor features = Tensor::uniform({512, 128}, 5, -1, 1);
  std::vector<NodeId> ids(256);
  std::iota(ids.begin(), ids.end(), NodeId{0});
  PinnedPool pool;
  auto bytes_for = [&](DType wire) {
    PreparedBatch b;
    stage_feature_rows(features, ids, wire, pool, b);
    const std::size_t fb = b.feature_bytes();
    release_batch_buffers(pool, std::move(b));
    return fb;
  };
  const auto f32 = static_cast<double>(bytes_for(DType::kF32));
  const auto f16 = static_cast<double>(bytes_for(DType::kF16));
  const auto i8 = static_cast<double>(bytes_for(DType::kInt8Q));
  EXPECT_GE(f32 / f16, 1.9);
  EXPECT_GE(f32 / i8, 3.4);
}

TEST(FeatureWire, ReleaseReturnsQuantizationSidecarsToPool) {
  Tensor features = Tensor::uniform({64, 16}, 6, -1, 1);
  std::vector<NodeId> ids(32);
  std::iota(ids.begin(), ids.end(), NodeId{0});
  PinnedPool pool;
  PreparedBatch b;
  stage_feature_rows(features, ids, DType::kInt8Q, pool, b);
  EXPECT_EQ(pool.idle_count(), 0u);
  release_batch_buffers(pool, std::move(b));
  // x + scale + zero all return (y was never staged here).
  EXPECT_EQ(pool.idle_count(), 3u);
}

}  // namespace
}  // namespace salient
