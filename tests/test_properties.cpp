// Property-based and adversarial-input tests across modules:
// randomized shape sweeps for the numeric kernels, statistical tests of the
// samplers, degenerate graphs (isolated nodes, stars, empty batches),
// partition/fetch-plan invariants over the pipelined cluster's in-flight
// batch windows, and monotonicity properties of the cluster simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <numeric>
#include <set>

#include "autograd/functions.h"
#include "autograd/gradcheck.h"
#include "dist/cluster/partitioner.h"
#include "dist/cluster/remote_cache.h"
#include "graph/builder.h"
#include "graph/dataset.h"
#include "graph/generator.h"
#include "prep/salient_loader.h"
#include "sampling/baseline_sampler.h"
#include "sampling/distributed.h"
#include "sampling/fast_sampler.h"
#include "sampling/sample_set.h"
#include "sim/pipeline_model.h"
#include "tensor/ops.h"
#include "train/inference.h"
#include "util/rng.h"

namespace salient {
namespace {

namespace ag = autograd;

// --- matmul shape sweep -----------------------------------------------------

class MatmulShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapeSweep, MatchesNaiveAtAllShapes) {
  const auto [m, k, n] = GetParam();
  Tensor a = Tensor::uniform({m, k}, static_cast<unsigned>(m * 31 + k), -2, 2);
  Tensor b = Tensor::uniform({k, n}, static_cast<unsigned>(k * 17 + n), -2, 2);
  Tensor c = ops::matmul(a, b);
  ASSERT_EQ(c.size(0), m);
  ASSERT_EQ(c.size(1), n);
  // spot-check a handful of entries against the naive inner product
  Xoshiro256ss rng(9);
  for (int t = 0; t < 8; ++t) {
    const auto i = static_cast<std::int64_t>(
        bounded_rand(rng, static_cast<std::uint64_t>(m)));
    const auto j = static_cast<std::int64_t>(
        bounded_rand(rng, static_cast<std::uint64_t>(n)));
    double want = 0;
    for (std::int64_t p = 0; p < k; ++p) {
      want += double(a.at<float>(i, p)) * double(b.at<float>(p, j));
    }
    ASSERT_NEAR(c.at<float>(i, j), want, 1e-3) << i << "," << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapeSweep,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 64, 1},
                      std::tuple{7, 1, 9}, std::tuple{64, 64, 64},
                      std::tuple{3, 129, 5}, std::tuple{130, 2, 257},
                      std::tuple{33, 300, 17}));

// --- elementwise identities over random tensors --------------------------------

TEST(OpsProperties, AlgebraicIdentities) {
  for (unsigned seed = 1; seed <= 5; ++seed) {
    Tensor x = Tensor::uniform({13, 7}, seed, -3, 3);
    Tensor zero = Tensor::zeros({13, 7});
    // x + 0 == x; x - x == 0; 1*x == x; relu(x) - relu(-x) == x
    EXPECT_TRUE(allclose(ops::add(x, zero), x));
    EXPECT_TRUE(allclose(ops::sub(x, x), zero, 0, 0));
    EXPECT_TRUE(allclose(ops::scale(x, 1.0), x, 0, 0));
    Tensor relu_id =
        ops::sub(ops::relu(x), ops::relu(ops::scale(x, -1.0)));
    EXPECT_TRUE(allclose(relu_id, x, 1e-6, 1e-6));
    // exp(log(|x|+1)) == |x|+1
    Tensor absx_p1 = ops::add(ops::mul(ops::relu_mask(x), x),
                              ops::mul(ops::relu_mask(ops::scale(x, -1.0)),
                                       ops::scale(x, -1.0)));
    absx_p1 = ops::add(absx_p1, Tensor::ones({13, 7}));
    EXPECT_TRUE(allclose(ops::exp(ops::log(absx_p1)), absx_p1, 1e-4, 1e-4));
  }
}

TEST(OpsProperties, SpmmMeanIsConvexCombination) {
  // Mean aggregation of values in [lo, hi] stays in [lo, hi].
  Xoshiro256ss rng(4);
  std::vector<std::int64_t> indptr{0};
  std::vector<std::int64_t> indices;
  for (int d = 0; d < 50; ++d) {
    const auto deg = bounded_rand(rng, 6);  // includes zero-degree rows
    for (std::uint64_t k = 0; k < deg; ++k) {
      indices.push_back(static_cast<std::int64_t>(bounded_rand(rng, 30)));
    }
    indptr.push_back(static_cast<std::int64_t>(indices.size()));
  }
  Tensor x = Tensor::uniform({30, 4}, 8, 2.0, 5.0);
  Tensor y = ops::spmm_mean(indptr, indices, x, 50);
  for (std::int64_t d = 0; d < 50; ++d) {
    const bool empty = indptr[static_cast<std::size_t>(d)] ==
                       indptr[static_cast<std::size_t>(d) + 1];
    for (std::int64_t j = 0; j < 4; ++j) {
      const float v = y.at<float>(d, j);
      if (empty) {
        ASSERT_EQ(v, 0.0f);
      } else {
        ASSERT_GE(v, 2.0f - 1e-5);
        ASSERT_LE(v, 5.0f + 1e-5);
      }
    }
  }
}

// --- half precision properties ---------------------------------------------------

TEST(HalfProperties, ConversionIsMonotone) {
  Xoshiro256ss rng(6);
  for (int t = 0; t < 20000; ++t) {
    const float a = static_cast<float>(
        (static_cast<double>(rng()) / 1.8e19 - 0.5) * 100);
    const float b = static_cast<float>(
        (static_cast<double>(rng()) / 1.8e19 - 0.5) * 100);
    const float ha = half_to_float(float_to_half(a));
    const float hb = half_to_float(float_to_half(b));
    if (a <= b) {
      ASSERT_LE(ha, hb) << a << " vs " << b;
    } else {
      ASSERT_GE(ha, hb) << a << " vs " << b;
    }
  }
}

TEST(HalfProperties, RelativeErrorWithinHalfUlp) {
  Xoshiro256ss rng(7);
  for (int t = 0; t < 20000; ++t) {
    const double u = static_cast<double>(rng()) / 1.8446744e19;
    const float x = static_cast<float>(std::pow(10.0, (u - 0.5) * 8));
    const float back = half_to_float(float_to_half(x));
    // Round-to-nearest: relative error <= 2^-11 for normal halves.
    ASSERT_NEAR(back, x, std::abs(x) * 0x1p-11 + 1e-7f) << x;
  }
}

// --- sampler statistics -------------------------------------------------------------

TEST(SamplerStatistics, FullPipelineSelectionIsUniformChiSquare) {
  // One node with 40 neighbors, fanout 8, many trials through FastSampler:
  // each neighbor should be chosen with probability 8/40.
  EdgeList edges;
  for (NodeId u = 1; u <= 40; ++u) edges.push(0, u);
  CsrGraph g = build_csr(41, edges);
  FastSampler sampler(g, {8});
  std::vector<NodeId> batch{0};
  std::vector<int> counts(41, 0);
  const int trials = 8000;
  for (int t = 0; t < trials; ++t) {
    Mfg mfg = sampler.sample(batch, 1000 + static_cast<unsigned>(t));
    const auto& level = mfg.levels[0];
    ASSERT_EQ(level.num_edges(), 8);
    for (const auto local : *level.indices) {
      ++counts[static_cast<std::size_t>(
          mfg.n_ids[static_cast<std::size_t>(local)])];
    }
  }
  const double expected = trials * 8.0 / 40.0;
  double chi2 = 0;
  for (NodeId u = 1; u <= 40; ++u) {
    const double diff = counts[static_cast<std::size_t>(u)] - expected;
    chi2 += diff * diff / expected;
  }
  // 39 dof: 99.9th percentile ~ 72.1. Flag only gross non-uniformity.
  EXPECT_LT(chi2, 72.1);
}

TEST(SamplerStatistics, EveryPolicyCoversAllNeighborsEventually) {
  std::vector<NodeId> neighbors(25);
  std::iota(neighbors.begin(), neighbors.end(), 100);
  auto covers = [&](auto policy_tag) {
    using Policy = decltype(policy_tag);
    Xoshiro256ss rng(3);
    std::set<NodeId> seen;
    for (int t = 0; t < 400; ++t) {
      std::vector<NodeId> out;
      Policy::sample(neighbors, 3, rng, out);
      seen.insert(out.begin(), out.end());
    }
    return seen.size();
  };
  EXPECT_EQ(covers(StdSetSampler{}), 25u);
  EXPECT_EQ(covers(FlatSetSampler{}), 25u);
  EXPECT_EQ(covers(ArraySetSampler{}), 25u);
  EXPECT_EQ(covers(FisherYatesSampler{}), 25u);
}

// --- MFG structural invariants, sampler-agnostic ----------------------------

// Check every invariant an MFG must satisfy regardless of which sampler
// produced it. Level order is model-consumption order (levels[0] outermost),
// so levels[l] was sampled with fanouts[L-1-l].
void check_mfg_invariants(const Mfg& mfg, const CsrGraph& g,
                          const std::vector<std::int64_t>& fanouts,
                          std::int64_t batch_size) {
  ASSERT_TRUE(mfg.valid());
  const std::size_t num_levels = fanouts.size();
  ASSERT_EQ(mfg.levels.size(), num_levels);
  EXPECT_EQ(mfg.batch_size, batch_size);
  EXPECT_EQ(mfg.levels.back().num_dst, batch_size);

  // n_ids is exactly the largest source set: no duplicate locals, every
  // global ID in range.
  ASSERT_EQ(static_cast<std::int64_t>(mfg.n_ids.size()),
            mfg.levels.front().num_src);
  const std::set<NodeId> unique_ids(mfg.n_ids.begin(), mfg.n_ids.end());
  EXPECT_EQ(unique_ids.size(), mfg.n_ids.size())
      << "two locals map to the same global node";
  for (const NodeId id : mfg.n_ids) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, g.num_nodes());
  }

  for (std::size_t l = 0; l < num_levels; ++l) {
    const MfgLevel& level = mfg.levels[l];
    const std::int64_t fanout = fanouts[num_levels - 1 - l];
    ASSERT_EQ(static_cast<std::int64_t>(level.indptr->size()),
              level.num_dst + 1);
    // Destinations are a prefix of every enclosing source set, so local d
    // resolves globally through n_ids at every level.
    for (std::int64_t d = 0; d < level.num_dst; ++d) {
      const std::int64_t deg =
          (*level.indptr)[static_cast<std::size_t>(d) + 1] -
          (*level.indptr)[static_cast<std::size_t>(d)];
      ASSERT_GE(deg, 0);
      ASSERT_LE(deg, fanout) << "level " << l << " dst " << d;
      ASSERT_LE(deg, g.degree(mfg.n_ids[static_cast<std::size_t>(d)]))
          << "sampled more neighbors than node " << d << " has";
    }
    for (const std::int64_t local : *level.indices) {
      ASSERT_GE(local, 0);
      ASSERT_LT(local, level.num_src);
    }
    // Frontier growth bound: each destination contributes itself plus at
    // most `fanout` sampled sources.
    ASSERT_LE(level.num_src, level.num_dst * (1 + fanout));
    if (l + 1 < num_levels) {
      ASSERT_EQ(level.num_dst, mfg.levels[l + 1].num_src);
    }
  }
}

class MfgInvariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(MfgInvariantSweep, HoldForBothSamplersOnRandomGraphs) {
  const unsigned seed = static_cast<unsigned>(GetParam());
  Xoshiro256ss rng(seed);
  // A mix of graph families, sizes, and fanout shapes per instance.
  const std::int64_t n = 200 + static_cast<std::int64_t>(bounded_rand(rng, 800));
  const double avg_degree = 2.0 + static_cast<double>(bounded_rand(rng, 10));
  const CsrGraph graph =
      (seed % 2 == 0) ? erdos_renyi(n, avg_degree, seed)
                      : powerlaw_configuration(n, avg_degree, 2.5, n / 4, seed);
  const std::vector<std::vector<std::int64_t>> fanout_shapes{
      {5}, {4, 3}, {6, 4, 2}, {1, 1}};
  for (const auto& fanouts : fanout_shapes) {
    // Random batch, possibly with repeated scans over high-degree nodes.
    const std::int64_t batch_size =
        1 + static_cast<std::int64_t>(bounded_rand(rng, 64));
    std::vector<NodeId> batch;
    std::set<NodeId> used;
    while (static_cast<std::int64_t>(batch.size()) < batch_size) {
      const auto v = static_cast<NodeId>(
          bounded_rand(rng, static_cast<std::uint64_t>(n)));
      if (used.insert(v).second) batch.push_back(v);
    }
    FastSampler fast(graph, fanouts);
    BaselineSampler baseline(graph, fanouts);
    const Mfg m_fast = fast.sample(batch, seed * 31 + 7);
    const Mfg m_base = baseline.sample(batch, seed * 31 + 7);
    check_mfg_invariants(m_fast, graph, fanouts,
                         static_cast<std::int64_t>(batch.size()));
    check_mfg_invariants(m_base, graph, fanouts,
                         static_cast<std::int64_t>(batch.size()));
    // Both samplers anchor the batch: the first batch_size n_ids are the
    // requested destinations, in order.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(m_fast.n_ids[i], batch[i]);
      EXPECT_EQ(m_base.n_ids[i], batch[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MfgInvariantSweep,
                         ::testing::Range(1, 9));

// --- degenerate graphs ----------------------------------------------------------------

TEST(DegenerateGraphs, IsolatedNodesSampleEmptyNeighborhoods) {
  // Node 0 isolated; node 1-2 connected.
  EdgeList edges;
  edges.push(1, 2);
  CsrGraph g = build_csr(3, edges);
  ASSERT_EQ(g.degree(0), 0);
  FastSampler sampler(g, {5, 5});
  std::vector<NodeId> batch{0, 1};
  Mfg mfg = sampler.sample(batch, 1);
  ASSERT_TRUE(mfg.valid());
  // isolated node contributes zero edges at every level
  for (const auto& level : mfg.levels) {
    EXPECT_EQ((*level.indptr)[1] - (*level.indptr)[0], 0);
  }
  // and the model still runs (zero rows aggregate to zeros)
  Tensor x = Tensor::uniform({mfg.num_input_nodes(), 4}, 2, -1, 1);
  Variable agg = ag::spmm_mean(mfg.levels[0].indptr, mfg.levels[0].indices,
                               Variable(x), mfg.levels[0].num_dst);
  for (std::int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(agg.data().at<float>(0, j), 0.0f);
  }
}

TEST(DegenerateGraphs, StarGraphHubSampling) {
  // Star: hub 0 with 200 leaves. Sampling the hub respects the fanout;
  // sampling a leaf always returns the hub.
  EdgeList edges;
  for (NodeId u = 1; u <= 200; ++u) edges.push(0, u);
  CsrGraph g = build_csr(201, edges);
  FastSampler sampler(g, {10});
  std::vector<NodeId> hub{0};
  Mfg m1 = sampler.sample(hub, 5);
  EXPECT_EQ(m1.levels[0].num_edges(), 10);
  std::vector<NodeId> leaf{17};
  Mfg m2 = sampler.sample(leaf, 5);
  EXPECT_EQ(m2.levels[0].num_edges(), 1);
  EXPECT_EQ(m2.n_ids[1], 0);  // the hub
}

TEST(DegenerateGraphs, LoaderHandlesEmptyAndTinyNodeSets) {
  DatasetConfig c;
  c.num_nodes = 200;
  c.feature_dim = 4;
  c.num_classes = 2;
  c.avg_degree = 4;
  c.seed = 9;
  Dataset ds = generate_dataset(c);
  LoaderConfig cfg;
  cfg.batch_size = 64;
  cfg.fanouts = {3};
  // empty node set: zero batches, next() returns nullopt immediately
  {
    SalientLoader loader(ds, std::span<const NodeId>{}, cfg);
    EXPECT_EQ(loader.num_batches(), 0);
    EXPECT_FALSE(loader.next().has_value());
  }
  // fewer nodes than one batch: a single short batch
  {
    std::vector<NodeId> three{1, 2, 3};
    SalientLoader loader(ds, three, cfg);
    EXPECT_EQ(loader.num_batches(), 1);
    auto b = loader.next();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->mfg.batch_size, 3);
    EXPECT_FALSE(loader.next().has_value());
  }
}

TEST(DegenerateGraphs, InferenceOnSingleNode) {
  DatasetConfig c;
  c.num_nodes = 300;
  c.feature_dim = 6;
  c.num_classes = 3;
  c.avg_degree = 5;
  c.seed = 12;
  Dataset ds = generate_dataset(c);
  nn::ModelConfig mc{6, 8, 3, 2, 1};
  auto model = nn::make_model("sage", mc);
  const std::vector<NodeId> one{7};
  const std::vector<std::int64_t> fanouts{4, 4};
  auto r = evaluate_sampled(*model, ds, one, fanouts, 16, 5);
  EXPECT_EQ(r.predictions.size(), 1u);
}

// --- autograd property sweep ------------------------------------------------------------

class GradcheckShapeSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GradcheckShapeSweep, LinearLogSoftmaxNllAtManyShapes) {
  const auto [m, n] = GetParam();
  Tensor target({m}, DType::kI64);
  for (std::int64_t i = 0; i < m; ++i) {
    target.at<std::int64_t>(i) = i % n;
  }
  auto fn = [&target](const std::vector<Variable>& in) {
    return ag::nll_loss(ag::log_softmax(ag::linear(in[0], in[1], in[2])),
                        target);
  };
  auto r = ag::gradcheck(
      fn,
      {Variable(Tensor::uniform({m, 3}, static_cast<unsigned>(m), -1, 1,
                                DType::kF64),
                true),
       Variable(Tensor::uniform({n, 3}, static_cast<unsigned>(n), -1, 1,
                                DType::kF64),
                true),
       Variable(Tensor::uniform({n}, 5, -1, 1, DType::kF64), true)});
  EXPECT_TRUE(r.ok) << r.message;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GradcheckShapeSweep,
                         ::testing::Values(std::pair{1, 2}, std::pair{2, 2},
                                           std::pair{5, 3}, std::pair{8, 7},
                                           std::pair{3, 11}));

// --- cluster plan invariants over pipelined batch windows --------------------

// Replays the pipelined ClusterTrainer's exact per-node planning order (the
// epoch shuffle, per-chunk sampler seeds, and ascending batch order the two
// step protocols share) and checks the structural invariants every in-flight
// batch's transfer plan must satisfy regardless of policy or depth.
TEST(ClusterPlanProperties, WindowPlansPartitionRowsAndNeverDoubleFetch) {
  DatasetConfig dc;
  dc.name = "prop-cluster";
  dc.num_nodes = 2000;
  dc.feature_dim = 8;
  dc.num_classes = 4;
  dc.avg_degree = 8;
  dc.powerlaw_exponent = 2.0;
  dc.seed = 13;
  const Dataset ds = generate_dataset(dc);

  dist::ClusterPartitionConfig pcfg;
  pcfg.num_nodes = 2;
  pcfg.strategy = dist::PartitionStrategy::kGreedy;
  const auto cp = dist::build_cluster_partition(ds.graph, pcfg);

  const int world = 2;
  const int depth = 2;  // in-flight window = depth + 1 batches
  const std::int64_t batch = 128;
  const std::uint64_t seed = 21;
  const std::uint64_t epoch_seed = seed * 0x10001ull + 1;
  std::vector<NodeId> order = ds.train_idx;
  schedule_shuffle(order, epoch_seed);
  const auto total = static_cast<std::int64_t>(order.size());
  const std::int64_t num_steps = std::min<std::int64_t>(
      6, (total + batch - 1) / batch);

  struct PolicyCase {
    CachePolicyKind policy;
    double pct;
  };
  for (const PolicyCase pc :
       {PolicyCase{CachePolicyKind::kPresample, 0.0},   // always-fetch
        PolicyCase{CachePolicyKind::kPresample, 0.05},  // static pinning
        PolicyCase{CachePolicyKind::kLru, 0.5}}) {      // dynamic admission
    dist::RemoteCacheConfig cc;
    cc.policy = pc.policy;
    cc.cache_percentage = pc.pct;
    cc.presample_epochs = 1;
    cc.fanouts = {5, 3};
    cc.batch_size = batch;
    cc.seed = seed;
    for (int p = 0; p < world; ++p) {
      const dist::RemoteFeatureCache cache(ds, cp, p, cc);
      FastSampler sampler(ds.graph, {5, 3});
      // Fetched vertex sets of the batches currently in flight together.
      std::deque<std::set<NodeId>> window;
      for (std::int64_t b = 0; b < num_steps; ++b) {
        const std::int64_t lo = b * batch;
        const std::int64_t global_rows = std::min(total, lo + batch) - lo;
        const ChunkRange chunk = chunk_range(global_rows, world, p);
        if (chunk.size() == 0) continue;
        const Mfg mfg = sampler.sample(
            {order.data() + lo + chunk.begin,
             static_cast<std::size_t>(chunk.size())},
            schedule_mix_seed(epoch_seed, b * world + p));
        const dist::RemotePlan plan = cache.plan(mfg);

        // Partition: every MFG input row is exactly one of cache hit,
        // locally owned, or listed in exactly one per-owner fetch.
        const std::size_t n = mfg.n_ids.size();
        ASSERT_EQ(plan.plan.from_cache.size(), n);
        std::vector<int> covered(n, 0);
        std::int64_t hits = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (plan.plan.from_cache[i]) {
            ++covered[i];
            ++hits;
          }
        }
        ASSERT_EQ(hits, plan.remote_hits);  // locals never sit in the cache
        for (const std::int64_t i : plan.local_rows) {
          ASSERT_EQ(cp.owner_of(mfg.n_ids[static_cast<std::size_t>(i)]), p);
          ++covered[static_cast<std::size_t>(i)];
        }
        std::set<NodeId> fetched;
        std::int64_t misses = 0;
        int prev_owner = -1;
        for (const auto& f : plan.fetches) {
          ASSERT_NE(f.owner, p);
          ASSERT_GT(f.owner, prev_owner);  // ascending, so no owner twice
          prev_owner = f.owner;
          for (const std::int64_t i : f.rows) {
            ASSERT_EQ(cp.owner_of(mfg.n_ids[static_cast<std::size_t>(i)]),
                      f.owner);
            ++covered[static_cast<std::size_t>(i)];
            fetched.insert(mfg.n_ids[static_cast<std::size_t>(i)]);
            ++misses;
          }
        }
        ASSERT_EQ(misses, plan.remote_misses);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(covered[i], 1)
              << "row " << i << " of batch " << b << " on node " << p;
        }

        // Dynamic admission caches a fetched row at plan time, so a vertex
        // fetched for batch j is a *hit* for any later batch planned while
        // it is resident: overlapping in-flight batches never move the same
        // row over the interconnect twice. (Static policies legitimately
        // re-fetch their misses, so the claim is admission-specific.)
        if (pc.policy == CachePolicyKind::kLru) {
          for (const auto& prev : window) {
            std::vector<NodeId> dup;
            std::set_intersection(prev.begin(), prev.end(), fetched.begin(),
                                  fetched.end(), std::back_inserter(dup));
            ASSERT_TRUE(dup.empty())
                << dup.size() << " rows fetched twice within the in-flight "
                << "window ending at batch " << b << " on node " << p;
          }
        }
        window.push_back(std::move(fetched));
        if (window.size() > static_cast<std::size_t>(depth + 1)) {
          window.pop_front();
        }
      }
    }
  }
}

// --- simulator monotonicity --------------------------------------------------------------

TEST(SimulatorProperties, EpochTimeMonotoneInEveryCost) {
  sim::WorkloadModel base;
  base.dataset = "prop";
  base.num_batches = 50;
  base.sample_pyg_s = 0.2;
  base.sample_salient_s = 0.1;
  base.slice_s = 0.02;
  base.pin_copy_s = 0.02;
  base.ipc_s = 0.01;
  base.transfer_mb = 50;
  base.train_gpu_s = 0.01;
  base.grad_mb = 1;
  const sim::HwProfile hw;
  const auto opts = sim::SystemOptions::salient();
  const double t0 = sim::simulate_epoch(base, hw, opts, 8, 1).epoch_seconds;
  auto bump = [&](auto setter) {
    sim::WorkloadModel w = base;
    setter(w);
    return sim::simulate_epoch(w, hw, opts, 8, 1).epoch_seconds;
  };
  EXPECT_GE(bump([](auto& w) { w.sample_salient_s *= 2; }), t0);
  EXPECT_GE(bump([](auto& w) { w.slice_s *= 2; }), t0);
  EXPECT_GE(bump([](auto& w) { w.transfer_mb *= 4; }), t0);
  EXPECT_GE(bump([](auto& w) { w.train_gpu_s *= 2; }), t0);
  EXPECT_GE(bump([](auto& w) { w.num_batches *= 2; }), 1.5 * t0);
}

TEST(SimulatorProperties, FasterGpuNeverHurts) {
  sim::WorkloadModel w = sim::paper_workload("products");
  sim::HwProfile slow, fast;
  slow.gpu_relative_speed = 1.0;
  fast.gpu_relative_speed = 4.0;
  for (const auto& opts :
       {sim::SystemOptions::pyg(), sim::SystemOptions::salient()}) {
    const double t_slow =
        sim::simulate_epoch(w, slow, opts, 20, 1).epoch_seconds;
    const double t_fast =
        sim::simulate_epoch(w, fast, opts, 20, 1).epoch_seconds;
    EXPECT_LE(t_fast, t_slow + 1e-9);
  }
}

}  // namespace
}  // namespace salient
