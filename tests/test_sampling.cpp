// Sampler tests: MFG structural invariants under every one of the 96 design
// space variants (TEST_P), semantic properties of sampling without
// replacement, ID-map correctness by fuzzing against std::unordered_map,
// and the production samplers' behaviour.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "graph/generator.h"
#include "sampling/baseline_sampler.h"
#include "sampling/fast_sampler.h"
#include "sampling/id_map.h"
#include "sampling/parameterized.h"
#include "sampling/sample_set.h"
#include "sampling/trace.h"
#include "util/rng.h"

namespace salient {
namespace {

CsrGraph& test_graph() {
  static CsrGraph g = powerlaw_configuration(5000, 12.0, 2.4, 800, 17);
  return g;
}

std::vector<NodeId> make_batch(std::int64_t n, std::uint64_t seed) {
  // distinct batch nodes
  std::vector<NodeId> all(static_cast<std::size_t>(test_graph().num_nodes()));
  std::iota(all.begin(), all.end(), 0);
  Xoshiro256ss rng(seed);
  for (std::size_t i = all.size(); i > 1; --i) {
    std::swap(all[i - 1], all[bounded_rand(rng, i)]);
  }
  all.resize(static_cast<std::size_t>(n));
  return all;
}

/// Full semantic validation of an MFG against its batch and graph.
void check_mfg(const Mfg& mfg, const std::vector<NodeId>& batch,
               const std::vector<std::int64_t>& fanouts, const CsrGraph& g) {
  ASSERT_TRUE(mfg.valid());
  ASSERT_EQ(mfg.levels.size(), fanouts.size());
  ASSERT_EQ(mfg.batch_size, static_cast<std::int64_t>(batch.size()));
  // n_ids begins with the batch (prefix property through all levels).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(mfg.n_ids[i], batch[i]);
  }
  // n_ids are unique (dedup across hops).
  std::set<NodeId> uniq(mfg.n_ids.begin(), mfg.n_ids.end());
  ASSERT_EQ(uniq.size(), mfg.n_ids.size());
  // Per level (model order is outermost first; fanouts[k] applies to the
  // level consumed last, i.e. levels[L-1-k]):
  for (std::size_t li = 0; li < mfg.levels.size(); ++li) {
    const auto& level = mfg.levels[li];
    const std::int64_t fanout = fanouts[mfg.levels.size() - 1 - li];
    for (std::int64_t d = 0; d < level.num_dst; ++d) {
      const NodeId dst_global = mfg.n_ids[static_cast<std::size_t>(d)];
      const auto b = (*level.indptr)[static_cast<std::size_t>(d)];
      const auto e = (*level.indptr)[static_cast<std::size_t>(d) + 1];
      // fanout bound: min(degree, fanout) edges
      const std::int64_t expect =
          std::min<std::int64_t>(g.degree(dst_global), fanout);
      ASSERT_EQ(e - b, expect) << "dst " << dst_global;
      std::set<std::int64_t> seen_srcs;
      const auto nb = g.neighbors(dst_global);
      for (std::int64_t k = b; k < e; ++k) {
        const std::int64_t src_local = (*level.indices)[
            static_cast<std::size_t>(k)];
        // no replacement
        ASSERT_TRUE(seen_srcs.insert(src_local).second);
        // sampled source is a real neighbor
        const NodeId src_global =
            mfg.n_ids[static_cast<std::size_t>(src_local)];
        ASSERT_TRUE(std::binary_search(nb.begin(), nb.end(), src_global))
            << src_global << " not a neighbor of " << dst_global;
      }
    }
  }
}

// --- all 96 variants ------------------------------------------------------------

class SamplerVariantTest : public ::testing::TestWithParam<SamplerVariant> {};

TEST_P(SamplerVariantTest, ProducesValidMfg) {
  const SamplerVariant v = GetParam();
  const auto batch = make_batch(64, 100 + v.map + v.set * 10);
  const std::vector<std::int64_t> fanouts{5, 3, 2};
  Mfg mfg = sample_with_variant(v, test_graph(), batch, fanouts, 1234);
  check_mfg(mfg, batch, fanouts, test_graph());
}

TEST_P(SamplerVariantTest, HopRunnerCountsEdges) {
  const SamplerVariant v = GetParam();
  const auto frontier = make_batch(128, 7);
  const std::int64_t edges =
      run_hop_with_variant(v, test_graph(), frontier, 4, 99);
  // Every frontier node contributes min(degree, 4) >= 1 edges.
  ASSERT_GE(edges, static_cast<std::int64_t>(frontier.size()));
  ASSERT_LE(edges, static_cast<std::int64_t>(frontier.size()) * 4);
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, SamplerVariantTest,
    ::testing::ValuesIn(all_sampler_variants()),
    [](const ::testing::TestParamInfo<SamplerVariant>& info) {
      std::string n = info.param.name();
      for (auto& c : n) {
        if (c == '/') c = '_';
      }
      return n;
    });

TEST(DesignSpace, Has96VariantsWithBaselineAndSalient) {
  const auto all = all_sampler_variants();
  EXPECT_EQ(all.size(), 96u);
  int baseline = 0, salient = 0;
  std::set<std::string> names;
  for (const auto& v : all) {
    baseline += v.is_baseline();
    salient += v.is_salient();
    names.insert(v.name());
  }
  EXPECT_EQ(baseline, 1);
  EXPECT_EQ(salient, 1);
  EXPECT_EQ(names.size(), 96u);  // all distinct
}

// --- set samplers ------------------------------------------------------------------

template <typename Policy>
class SampleSetTest : public ::testing::Test {};

using SetPolicies = ::testing::Types<StdSetSampler, FlatSetSampler,
                                     ArraySetSampler, FisherYatesSampler>;
TYPED_TEST_SUITE(SampleSetTest, SetPolicies);

TYPED_TEST(SampleSetTest, SamplesDistinctNeighbors) {
  std::vector<NodeId> neighbors(100);
  std::iota(neighbors.begin(), neighbors.end(), 1000);
  Xoshiro256ss rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<NodeId> out;
    TypeParam::sample(neighbors, 10, rng, out);
    ASSERT_EQ(out.size(), 10u);
    std::set<NodeId> uniq(out.begin(), out.end());
    ASSERT_EQ(uniq.size(), 10u);
    for (const NodeId v : out) {
      ASSERT_GE(v, 1000);
      ASSERT_LT(v, 1100);
    }
  }
}

TYPED_TEST(SampleSetTest, TakesAllWhenDegreeSmall) {
  std::vector<NodeId> neighbors{7, 8, 9};
  Xoshiro256ss rng(6);
  std::vector<NodeId> out;
  TypeParam::sample(neighbors, 10, rng, out);
  EXPECT_EQ(out, neighbors);
  // exactly fanout == degree also takes all, in order
  out.clear();
  TypeParam::sample(neighbors, 3, rng, out);
  EXPECT_EQ(out, neighbors);
}

TYPED_TEST(SampleSetTest, IsRoughlyUniform) {
  std::vector<NodeId> neighbors(20);
  std::iota(neighbors.begin(), neighbors.end(), 0);
  Xoshiro256ss rng(8);
  std::vector<int> counts(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    std::vector<NodeId> out;
    TypeParam::sample(neighbors, 5, rng, out);
    for (const NodeId v : out) ++counts[static_cast<std::size_t>(v)];
  }
  // Each neighbor expected trials*5/20 times.
  const double expected = trials * 5.0 / 20.0;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

// --- flat ID map fuzz ---------------------------------------------------------------

TEST(FlatIdMap, MatchesStdMapUnderFuzz) {
  FlatIdMap flat;
  StdIdMap ref;
  std::vector<NodeId> flat_locals, ref_locals;
  Xoshiro256ss rng(13);
  for (int i = 0; i < 200000; ++i) {
    const auto key = static_cast<NodeId>(bounded_rand(rng, 30000));
    const auto a = flat.get_or_insert(key, flat_locals);
    const auto b = ref.get_or_insert(key, ref_locals);
    ASSERT_EQ(a, b) << "iteration " << i;
  }
  EXPECT_EQ(flat_locals, ref_locals);
  // clear and reuse
  flat.clear();
  flat_locals.clear();
  EXPECT_EQ(flat.get_or_insert(42, flat_locals), 0);
  EXPECT_EQ(flat.get_or_insert(42, flat_locals), 0);
  EXPECT_EQ(flat.get_or_insert(7, flat_locals), 1);
}

// Regression test for the reserve()/clear() reuse fast paths: reserving an
// empty (freshly cleared) table must keep it usable and must not shrink it,
// and the per-minibatch clear → reserve → refill cycle must behave exactly
// like a fresh map at every step.
TEST(FlatIdMap, ClearThenReserveReusesCapacity) {
  FlatIdMap map;
  StdIdMap ref;
  Xoshiro256ss rng(29);
  for (int round = 0; round < 5; ++round) {
    map.clear();
    ref.clear();
    map.reserve(4000);
    std::vector<NodeId> locals, ref_locals;
    for (int i = 0; i < 12000; ++i) {
      const auto key = static_cast<NodeId>(bounded_rand(rng, 6000));
      ASSERT_EQ(map.get_or_insert(key, locals),
                ref.get_or_insert(key, ref_locals))
          << "round " << round << " iteration " << i;
    }
    EXPECT_EQ(locals, ref_locals);
    // A smaller reserve on the next round must not lose existing capacity.
    map.reserve(16);
  }
}

TEST(FlatIdMap, GrowsBeyondInitialCapacity) {
  FlatIdMap map;
  std::vector<NodeId> locals;
  for (NodeId k = 0; k < 10000; ++k) {
    ASSERT_EQ(map.get_or_insert(k * 1000003, locals), k);
  }
  for (NodeId k = 0; k < 10000; ++k) {
    ASSERT_EQ(map.get_or_insert(k * 1000003, locals), k);
  }
}

// --- production samplers --------------------------------------------------------------

TEST(Samplers, BaselineAndFastProduceValidMfgs) {
  const auto batch = make_batch(128, 55);
  const std::vector<std::int64_t> fanouts{15, 10, 5};
  BaselineSampler baseline(test_graph(), fanouts, 3);
  FastSampler fast(test_graph(), fanouts, 3);
  check_mfg(baseline.sample(batch), batch, fanouts, test_graph());
  check_mfg(fast.sample(batch), batch, fanouts, test_graph());
}

TEST(Samplers, SeededSamplingIsDeterministic) {
  const auto batch = make_batch(64, 56);
  const std::vector<std::int64_t> fanouts{5, 5};
  FastSampler fast(test_graph(), fanouts);
  Mfg a = fast.sample(batch, 42);
  Mfg b = fast.sample(batch, 42);
  EXPECT_EQ(a.n_ids, b.n_ids);
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t i = 0; i < a.levels.size(); ++i) {
    EXPECT_EQ(*a.levels[i].indices, *b.levels[i].indices);
  }
  Mfg c = fast.sample(batch, 43);
  EXPECT_NE(*a.levels[0].indices, *c.levels[0].indices);
}

TEST(Samplers, FullFanoutTakesWholeNeighborhood) {
  const auto batch = make_batch(32, 57);
  const std::vector<std::int64_t> fanouts{100000};
  FastSampler fast(test_graph(), fanouts);
  Mfg mfg = fast.sample(batch);
  const auto& level = mfg.levels[0];
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto deg = test_graph().degree(batch[i]);
    EXPECT_EQ((*level.indptr)[i + 1] - (*level.indptr)[i], deg);
  }
}

TEST(Samplers, NeighborhoodGrowsAcrossHops) {
  const auto batch = make_batch(16, 58);
  FastSampler fast(test_graph(), {10, 10, 10});
  Mfg mfg = fast.sample(batch);
  // model order: levels[0] outermost (largest), sizes shrink toward batch
  ASSERT_EQ(mfg.levels.size(), 3u);
  EXPECT_GT(mfg.levels[0].num_src, mfg.levels[1].num_src);
  EXPECT_GT(mfg.levels[1].num_src, mfg.levels[2].num_src);
  EXPECT_EQ(mfg.levels[2].num_dst, 16);
}

TEST(Trace, RecordsGrowingFrontiers) {
  const auto batch = make_batch(32, 59);
  const std::vector<std::int64_t> fanouts{8, 4};
  SampleTrace trace = record_trace(test_graph(), batch, fanouts, 7);
  ASSERT_EQ(trace.hops.size(), 2u);
  EXPECT_EQ(trace.hops[0].frontier.size(), 32u);
  EXPECT_EQ(trace.hops[0].fanout, 8);
  EXPECT_GT(trace.hops[1].frontier.size(), trace.hops[0].frontier.size());
  // hop 0 frontier is exactly the batch
  EXPECT_TRUE(std::equal(batch.begin(), batch.end(),
                         trace.hops[0].frontier.begin()));
}

TEST(Mfg, SerializationHelpersRoundTripThroughValidation) {
  const auto batch = make_batch(32, 60);
  FastSampler fast(test_graph(), {6, 3});
  Mfg mfg = fast.sample(batch);
  EXPECT_GT(mfg.total_edges(), 0);
  EXPECT_GT(mfg.adjacency_bytes(), 0u);
}

}  // namespace
}  // namespace salient
