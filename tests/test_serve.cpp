// Serving-subsystem tests: admission control and shedding, micro-batching
// policy, the result cache's LRU + generation semantics, end-to-end
// request->prediction correctness against evaluate_sampled, determinism
// across prep-worker counts, and the SLO metrics surfaced through the obs
// registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "graph/dataset.h"
#include "nn/models.h"
#include "obs/metrics.h"
#include "serve/micro_batcher.h"
#include "serve/request_queue.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "train/inference.h"

namespace salient {
namespace {

using serve::BatchPolicy;
using serve::InferenceServer;
using serve::MicroBatcher;
using serve::Request;
using serve::RequestQueue;
using serve::RequestStatus;
using serve::Response;
using serve::ResultCache;
using serve::ServeConfig;

Dataset& serve_dataset() {
  static Dataset ds = [] {
    DatasetConfig c;
    c.name = "serve-test";
    c.num_nodes = 3000;
    c.feature_dim = 16;
    c.num_classes = 4;
    c.avg_degree = 8;
    c.max_degree = 40;  // bounded so full-fanout sampling is deterministic
    c.p_in = 0.85;
    c.feature_signal = 0.5;
    c.feature_noise = 0.6;
    c.seed = 33;
    return generate_dataset(c);
  }();
  return ds;
}

// Fanouts at least the graph's true max degree: the sampler then takes
// every neighbor deterministically, so sampled inference is exact and
// seed-independent — the basis for the bit-for-bit correctness tests below.
std::vector<std::int64_t> full_fanouts(const Dataset& ds, int levels) {
  std::int64_t max_deg = 0;
  for (NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    max_deg = std::max(max_deg, ds.graph.degree(v));
  }
  return std::vector<std::int64_t>(levels, max_deg);
}

std::shared_ptr<nn::GnnModel> serve_model(const Dataset& ds) {
  nn::ModelConfig mc;
  mc.in_channels = ds.feature_dim;
  mc.hidden_channels = 16;
  mc.out_channels = ds.num_classes;
  mc.num_layers = 2;
  mc.seed = 7;
  return nn::make_model("sage", mc);
}

// --- RequestQueue: admission + shedding -------------------------------------

TEST(RequestQueue, ShedsWhenFullAndResolvesImmediately) {
  RequestQueue q(2);
  auto f1 = q.submit({1});
  auto f2 = q.submit({2});
  auto f3 = q.submit({3});  // over capacity: shed
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.admitted(), 2u);
  EXPECT_EQ(q.shed(), 1u);
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f3.get().status, RequestStatus::kShed);
  // Admitted requests are still pending.
  EXPECT_NE(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  (void)f2;
}

TEST(RequestQueue, SubmitAfterCloseResolvesClosed) {
  RequestQueue q(4);
  q.close();
  auto f = q.submit({1, 2});
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f.get().status, RequestStatus::kClosed);
  EXPECT_EQ(q.shed(), 0u);  // closed-rejects are not counted as shed
}

// --- MicroBatcher: max-size / max-wait policy -------------------------------

TEST(MicroBatcher, CoalescesBacklogUpToMaxBatchNodes) {
  RequestQueue q(64);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 10; ++i) futs.push_back(q.submit({i, i + 100}));  // 2 nodes each

  BatchPolicy policy;
  policy.max_batch_nodes = 6;
  policy.max_wait = std::chrono::microseconds(50'000);
  MicroBatcher batcher(q, policy);

  auto b1 = batcher.next();
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->total_nodes(), 6);
  EXPECT_EQ(b1->requests.size(), 3u);
  EXPECT_EQ(b1->seq, 0);

  auto b2 = batcher.next();
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->total_nodes(), 6);
  EXPECT_EQ(b2->seq, 1);

  // Complete the pending promises so the futures don't dangle.
  for (auto* b : {&*b1, &*b2}) {
    for (Request& r : b->requests) r.promise.set_value(Response{});
  }
  q.close();
  auto b3 = batcher.next();  // drains the rest
  auto b4 = batcher.next();
  ASSERT_TRUE(b3.has_value());
  ASSERT_TRUE(b4.has_value());
  EXPECT_EQ(b3->total_nodes() + b4->total_nodes(), 8);
  EXPECT_FALSE(batcher.next().has_value());  // closed and drained
  for (auto* b : {&*b3, &*b4}) {
    for (Request& r : b->requests) r.promise.set_value(Response{});
  }
}

TEST(MicroBatcher, MaxWaitBoundsLoneRequestDelay) {
  RequestQueue q(8);
  BatchPolicy policy;
  policy.max_batch_nodes = 1024;
  policy.max_wait = std::chrono::microseconds(10'000);
  MicroBatcher batcher(q, policy);

  auto fut = q.submit({42});
  const auto t0 = std::chrono::steady_clock::now();
  auto b = batcher.next();
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->requests.size(), 1u);
  // Closed by the wait bound, well before any size bound: the lone request
  // is not held hostage (allow generous slack for slow CI machines).
  EXPECT_LT(waited_ms, 5000.0);
  b->requests[0].promise.set_value(Response{});
  q.close();
}

TEST(MicroBatcher, RequestNeverSpansTwoBatches) {
  RequestQueue q(8);
  BatchPolicy policy;
  policy.max_batch_nodes = 4;
  policy.max_wait = std::chrono::microseconds(20'000);
  MicroBatcher batcher(q, policy);
  auto f1 = q.submit({1, 2, 3});
  auto f2 = q.submit({4, 5, 6});  // would overflow: must carry to batch 2
  auto b1 = batcher.next();
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->requests.size(), 1u);
  EXPECT_EQ(b1->total_nodes(), 3);
  auto b2 = batcher.next();
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->requests.size(), 1u);
  EXPECT_EQ(b2->total_nodes(), 3);
  for (auto* b : {&*b1, &*b2}) {
    for (Request& r : b->requests) r.promise.set_value(Response{});
  }
  q.close();
}

TEST(MicroBatcher, ZeroWaitStillDrainsBacklogGreedily) {
  // max_wait == 0 degenerates the coalescing wait to a poll: a backlog is
  // still packed into one batch instead of one singleton batch per request.
  RequestQueue q(16);
  BatchPolicy policy;
  policy.max_batch_nodes = 64;
  policy.max_wait = std::chrono::microseconds(0);
  MicroBatcher batcher(q, policy);
  std::vector<std::future<Response>> futures;
  for (NodeId v = 0; v < 5; ++v) futures.push_back(q.submit({v}));
  auto b = batcher.next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->requests.size(), 5u);
  EXPECT_EQ(b->total_nodes(), 5);
  for (Request& r : b->requests) r.promise.set_value(Response{});
  q.close();
  EXPECT_FALSE(batcher.next().has_value());
}

TEST(MicroBatcher, OversizedRequestFormsItsOwnBatch) {
  // A single request larger than max_batch_nodes cannot be split (a request
  // never spans two batches), so it is carried over and shipped alone.
  RequestQueue q(8);
  BatchPolicy policy;
  policy.max_batch_nodes = 4;
  policy.max_wait = std::chrono::microseconds(0);
  MicroBatcher batcher(q, policy);
  auto fa = q.submit({0, 1});
  auto fb = q.submit({2, 3, 4, 5, 6, 7});  // oversized: 6 > max_batch_nodes
  auto fc = q.submit({8});
  q.close();

  auto b1 = batcher.next();
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->seq, 0);
  EXPECT_EQ(b1->requests.size(), 1u);
  EXPECT_EQ(b1->total_nodes(), 2);  // {A}; B would overflow and is carried

  auto b2 = batcher.next();
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->seq, 1);
  EXPECT_EQ(b2->requests.size(), 1u);
  EXPECT_EQ(b2->total_nodes(), 6);  // {B} alone, over the nominal bound

  auto b3 = batcher.next();
  ASSERT_TRUE(b3.has_value());
  EXPECT_EQ(b3->seq, 2);
  EXPECT_EQ(b3->total_nodes(), 1);  // {C}
  EXPECT_FALSE(batcher.next().has_value());

  for (auto* b : {&*b1, &*b2, &*b3}) {
    for (Request& r : b->requests) r.promise.set_value(Response{});
  }
}

TEST(RequestQueue, ShedThenDrainPreservesFifoOfAdmitted) {
  // Overload then shutdown: the overflow is shed immediately, and what was
  // admitted drains in submission order before the consumer sees nullopt.
  RequestQueue q(3);
  std::vector<std::future<Response>> futures;
  for (NodeId v = 0; v < 5; ++v) futures.push_back(q.submit({v}));
  EXPECT_EQ(q.admitted(), 3u);
  EXPECT_EQ(q.shed(), 2u);
  // The shed futures (the two latest submits) resolved immediately.
  for (std::size_t i = 3; i < 5; ++i) {
    EXPECT_EQ(futures[i].get().status, RequestStatus::kShed);
  }
  q.close();
  for (NodeId expect = 0; expect < 3; ++expect) {
    auto r = q.pop();
    ASSERT_TRUE(r.has_value());
    ASSERT_EQ(r->nodes.size(), 1u);
    EXPECT_EQ(r->nodes[0], expect);  // FIFO
    r->promise.set_value(Response{});
  }
  EXPECT_FALSE(q.pop().has_value());  // closed and drained
}

// --- ResultCache ------------------------------------------------------------

TEST(ResultCache, LruEvictsOldestAndGenerationInvalidates) {
  ResultCache cache(2);
  EXPECT_EQ(cache.lookup(1), std::nullopt);
  cache.insert(1, 10, cache.generation());
  cache.insert(2, 20, cache.generation());
  EXPECT_EQ(cache.lookup(1), 10);  // touches 1: LRU order is now [1, 2]
  cache.insert(3, 30, cache.generation());
  EXPECT_EQ(cache.lookup(2), std::nullopt);  // 2 was evicted
  EXPECT_EQ(cache.lookup(1), 10);
  EXPECT_EQ(cache.lookup(3), 30);

  const auto gen = cache.invalidate();
  EXPECT_EQ(gen, cache.generation());
  EXPECT_EQ(cache.lookup(1), std::nullopt);  // stale under the new model
  EXPECT_EQ(cache.lookup(3), std::nullopt);
  EXPECT_EQ(cache.size(), 0);  // stale entries evicted on touch

  // An insert tagged with an outdated generation must be dropped.
  cache.insert(5, 50, gen - 1);
  EXPECT_EQ(cache.lookup(5), std::nullopt);
  cache.insert(5, 51, gen);
  EXPECT_EQ(cache.lookup(5), 51);
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.insert(1, 10, cache.generation());
  EXPECT_EQ(cache.lookup(1), std::nullopt);
  EXPECT_EQ(cache.size(), 0);
}

// Regression test for the generation/lock discipline (the annotation sweep
// moved the generation check inside the cache mutex, and invalidate() now
// bumps under it): once invalidate() has returned generation G, a lookup
// that starts afterwards must never serve a prediction computed under a
// generation below G. Predictions are tagged with the generation they were
// inserted under, so a stale serve is directly observable.
TEST(ResultCache, GenerationContractUnderConcurrentInvalidation) {
  ResultCache cache(64);
  constexpr NodeId kNode = 7;
  std::atomic<bool> stop{false};
  // Highest generation for which invalidate() has RETURNED — everything
  // below it is retired and must never be served again.
  std::atomic<std::uint64_t> retired_below{0};

  std::thread invalidator([&] {
    for (int i = 0; i < 1500; ++i) {
      const std::uint64_t g = cache.invalidate();
      retired_below.store(g, std::memory_order_release);
      std::this_thread::yield();  // give the writer/reader a slice per gen
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t g = cache.generation();
      cache.insert(kNode, static_cast<std::int64_t>(g), g);
    }
  });

  while (!stop.load(std::memory_order_acquire)) {
    const std::uint64_t floor = retired_below.load(std::memory_order_acquire);
    if (const auto pred = cache.lookup(kNode)) {
      ASSERT_GE(static_cast<std::uint64_t>(*pred), floor)
          << "served a prediction from a retired model generation";
    }
  }
  invalidator.join();
  writer.join();
  // Quiescent sanity check: the hit path still works after the churn.
  const std::uint64_t g = cache.generation();
  cache.insert(kNode, static_cast<std::int64_t>(g), g);
  EXPECT_EQ(cache.lookup(kNode), static_cast<std::int64_t>(g));
}

// --- End-to-end serving -----------------------------------------------------

ServeConfig base_config() {
  ServeConfig sc;
  sc.fanouts = {6, 6};
  sc.queue_capacity = 64;
  sc.batch.max_batch_nodes = 64;
  sc.batch.max_wait = std::chrono::microseconds(500);
  sc.num_prep_workers = 2;
  sc.seed = 77;
  return sc;
}

TEST(InferenceServer, ServesRequestsEndToEnd) {
  const Dataset& ds = serve_dataset();
  auto model = serve_model(ds);
  DeviceSim device;
  InferenceServer server(ds, model, device, base_config());

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 40; ++i) {
    futs.push_back(server.submit({ds.test_idx[i % ds.test_idx.size()],
                                  ds.test_idx[(i * 7) % ds.test_idx.size()]}));
  }
  for (auto& f : futs) {
    Response r = f.get();
    ASSERT_EQ(r.status, RequestStatus::kOk) << to_string(r.status);
    ASSERT_EQ(r.predictions.size(), 2u);
    for (const auto p : r.predictions) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, ds.num_classes);
    }
    EXPECT_GT(r.total_us, 0.0);
    EXPECT_GE(r.total_us, r.queue_us);
  }
  const auto stats = server.stats();
  EXPECT_GE(stats.completed, 40);
  EXPECT_GE(stats.batches, 1);
}

TEST(InferenceServer, MatchesEvaluateSampledAtFullFanout) {
  // With fanouts >= max degree the sampler takes every neighbor
  // deterministically, so the serving pipeline must reproduce
  // evaluate_sampled's predictions bit-for-bit on the same nodes.
  const Dataset& ds = serve_dataset();
  auto model = serve_model(ds);
  DeviceSim device;

  const std::vector<std::int64_t> fanouts = full_fanouts(ds, 2);
  std::vector<NodeId> nodes(ds.test_idx.begin(), ds.test_idx.begin() + 64);
  const InferenceResult reference = evaluate_sampled(
      *model, ds, nodes, fanouts, /*batch_size=*/16, /*seed=*/1);

  ServeConfig sc = base_config();
  sc.fanouts = fanouts;
  InferenceServer server(ds, model, device, sc);
  std::vector<std::future<Response>> futs;
  futs.reserve(nodes.size());
  for (const NodeId v : nodes) futs.push_back(server.submit({v}));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Response r = futs[i].get();
    ASSERT_EQ(r.status, RequestStatus::kOk);
    ASSERT_EQ(r.predictions.size(), 1u);
    EXPECT_EQ(r.predictions[0], reference.predictions[i]) << "node " << i;
  }
}

TEST(InferenceServer, DeterministicAcrossPrepWorkerCounts) {
  // Per-batch seeding by sequence number: with serial (closed-loop)
  // submission the batch composition is fixed, so predictions must be
  // identical no matter how many prep workers race on the queue.
  const Dataset& ds = serve_dataset();
  auto model = serve_model(ds);

  auto run = [&](int workers) {
    DeviceSim device;
    ServeConfig sc = base_config();
    sc.num_prep_workers = workers;
    InferenceServer server(ds, model, device, sc);
    std::vector<std::int64_t> preds;
    for (int i = 0; i < 48; ++i) {
      Response r = server.predict({ds.val_idx[i % ds.val_idx.size()]});
      EXPECT_EQ(r.status, RequestStatus::kOk);
      preds.insert(preds.end(), r.predictions.begin(), r.predictions.end());
    }
    return preds;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(InferenceServer, ResultCacheServesRepeatsAndInvalidatesOnModelUpdate) {
  const Dataset& ds = serve_dataset();
  auto model = serve_model(ds);
  DeviceSim device;
  ServeConfig sc = base_config();
  sc.result_cache_capacity = 1024;
  InferenceServer server(ds, model, device, sc);

  const NodeId v = ds.test_idx[0];
  Response first = server.predict({v});
  ASSERT_EQ(first.status, RequestStatus::kOk);
  EXPECT_EQ(first.nodes_from_cache, 0);

  Response repeat = server.predict({v});
  ASSERT_EQ(repeat.status, RequestStatus::kOk);
  EXPECT_EQ(repeat.nodes_from_cache, 1);
  EXPECT_EQ(repeat.predictions, first.predictions);
  EXPECT_EQ(repeat.model_generation, first.model_generation);

  // A model update invalidates cached predictions: the next request
  // recomputes under the new generation.
  const auto gen = server.notify_model_updated();
  Response fresh = server.predict({v});
  ASSERT_EQ(fresh.status, RequestStatus::kOk);
  EXPECT_EQ(fresh.nodes_from_cache, 0);
  EXPECT_EQ(fresh.model_generation, gen);
}

TEST(InferenceServer, OverloadShedsInsteadOfBuffering) {
  const Dataset& ds = serve_dataset();
  auto model = serve_model(ds);
  DeviceSim device;
  ServeConfig sc = base_config();
  // Tiny buffers everywhere: the whole pipeline can absorb only a few dozen
  // single-node requests, so a fast 2000-request burst must shed.
  sc.queue_capacity = 4;
  sc.batch.max_batch_nodes = 8;
  sc.batch.max_wait = std::chrono::microseconds(5'000);
  sc.num_prep_workers = 1;
  sc.stage_queue_capacity = 2;
  sc.pipeline_depth = 1;
  InferenceServer server(ds, model, device, sc);

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 2000; ++i) {
    futs.push_back(server.submit({ds.test_idx[i % ds.test_idx.size()]}));
  }
  std::int64_t ok = 0, shed = 0;
  for (auto& f : futs) {
    const Response r = f.get();
    (r.status == RequestStatus::kOk ? ok : shed)++;
    if (r.status != RequestStatus::kOk) {
      EXPECT_EQ(r.status, RequestStatus::kShed);
      EXPECT_TRUE(r.predictions.empty());
    }
  }
  EXPECT_EQ(ok + shed, 2000);
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);  // the burst exceeded the bound: load was shed
  EXPECT_EQ(server.stats().shed, shed);
}

TEST(InferenceServer, SloMetricsAreNonDegenerate) {
  obs::Registry::global().reset();
  const Dataset& ds = serve_dataset();
  auto model = serve_model(ds);
  DeviceSim device;
  ServeConfig sc = base_config();
  sc.slo_us = 10e6;  // generous: everything lands in slo_ok
  InferenceServer server(ds, model, device, sc);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(server.predict({ds.test_idx[i % ds.test_idx.size()]}).ok());
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 64);
  EXPECT_GT(stats.p50_us, 0.0);
  EXPECT_LE(stats.p50_us, stats.p95_us);
  EXPECT_LE(stats.p95_us, stats.p99_us);
  EXPECT_EQ(stats.slo_ok, 64);
  EXPECT_EQ(stats.slo_miss, 0);
  EXPECT_FALSE(stats.summary().empty());

  // The registry dump surfaces the serving instruments (and the histogram
  // the percentiles come from).
  const std::string dump = obs::Registry::global().dump_text();
  EXPECT_NE(dump.find("serve.latency_us"), std::string::npos);
  EXPECT_NE(dump.find("serve.completed"), std::string::npos);
}

TEST(InferenceServer, FeatureCachePathServesCorrectlyAndCountsHits) {
  obs::Registry::global().reset();
  const Dataset& ds = serve_dataset();
  auto model = serve_model(ds);

  const std::vector<std::int64_t> fanouts = full_fanouts(ds, 2);
  std::vector<NodeId> nodes(ds.test_idx.begin(), ds.test_idx.begin() + 32);
  const InferenceResult reference = evaluate_sampled(
      *model, ds, nodes, fanouts, /*batch_size=*/8, /*seed=*/3);

  DeviceSim device;
  ServeConfig sc = base_config();
  sc.fanouts = fanouts;
  sc.feature_cache = std::make_shared<const FeatureCache>(ds, 512);
  InferenceServer server(ds, model, device, sc);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Response r = server.predict({nodes[i]});
    ASSERT_EQ(r.status, RequestStatus::kOk);
    EXPECT_EQ(r.predictions[0], reference.predictions[i]) << "node " << i;
  }
  // The FeatureCache hit/miss counters (satellite: surfaced via obs) must
  // have recorded this traffic; degree-ordered caching on a power-law graph
  // hits far more often than capacity/|V|.
  auto& reg = obs::Registry::global();
  const auto hits = reg.counter("prep.cache.row_hits").value();
  const auto misses = reg.counter("prep.cache.row_misses").value();
  EXPECT_GT(hits, 0);
  EXPECT_GT(hits + misses, 0);
  EXPECT_GT(server.stats().feature_cache_hit_rate, 0.05);
  const std::string dump = obs::Registry::global().dump_text();
  EXPECT_NE(dump.find("prep.cache.row_hits"), std::string::npos);
}

TEST(InferenceServer, ShutdownDrainsInFlightRequests) {
  const Dataset& ds = serve_dataset();
  auto model = serve_model(ds);
  DeviceSim device;
  auto server =
      std::make_unique<InferenceServer>(ds, model, device, base_config());
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(server->submit({ds.test_idx[i % ds.test_idx.size()]}));
  }
  server->shutdown();  // must drain, not drop
  for (auto& f : futs) {
    EXPECT_EQ(f.get().status, RequestStatus::kOk);
  }
  // Post-shutdown submits resolve kClosed immediately.
  EXPECT_EQ(server->predict({ds.test_idx[0]}).status, RequestStatus::kClosed);
  server.reset();  // double-shutdown via destructor is a no-op
}

TEST(InferenceServer, EmptyRequestCompletesImmediately) {
  const Dataset& ds = serve_dataset();
  auto model = serve_model(ds);
  DeviceSim device;
  InferenceServer server(ds, model, device, base_config());
  Response r = server.predict({});
  EXPECT_EQ(r.status, RequestStatus::kOk);
  EXPECT_TRUE(r.predictions.empty());
}

}  // namespace
}  // namespace salient
