// Cluster-simulator tests: scheduling primitives, timeline rendering, and —
// most importantly — that the pipeline models reproduce the paper's
// qualitative results: ablation ordering (Table 3), prep/transfer dominance
// for the baseline (Table 1), near-GPU-bound SALIENT epochs (§4.4, Fig. 4),
// multi-GPU scaling shape (Figure 5), and calibration sanity.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/dataset.h"
#include "sim/calibration.h"
#include "sim/pipeline_model.h"
#include "sim/resources.h"
#include "sim/timeline.h"

namespace salient::sim {
namespace {

TEST(FifoResource, SerializesRequests) {
  FifoResource r;
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(r.acquire(1.0, 2.0), 2.0);  // busy until 2
  EXPECT_DOUBLE_EQ(r.acquire(10.0, 1.0), 10.0);  // idle gap honours ready
  EXPECT_DOUBLE_EQ(r.free_time(), 11.0);
}

TEST(PoolResource, PicksEarliestFreeUnit) {
  PoolResource p(2);
  EXPECT_DOUBLE_EQ(p.acquire(0, 5), 0.0);  // unit 0 busy till 5
  EXPECT_DOUBLE_EQ(p.acquire(0, 3), 0.0);  // unit 1 busy till 3
  int unit = -1;
  EXPECT_DOUBLE_EQ(p.acquire(0, 1, &unit), 3.0);  // unit 1 again
  EXPECT_EQ(unit, 1);
  EXPECT_DOUBLE_EQ(p.earliest_free(), 4.0);
  EXPECT_THROW(PoolResource(0), std::invalid_argument);
}

TEST(Timeline, TracksSpansAndRenders) {
  Timeline t;
  t.add("gpu0", "train", 0, 0.0, 1.0);
  t.add("pcie0", "xfer", 1, 0.5, 1.5);
  EXPECT_DOUBLE_EQ(t.end_time(), 1.5);
  const std::string art = t.render_ascii(30);
  EXPECT_NE(art.find("gpu0"), std::string::npos);
  EXPECT_NE(art.find("pcie0"), std::string::npos);
  EXPECT_NE(art.find('t'), std::string::npos);
  EXPECT_NE(art.find('x'), std::string::npos);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("gpu0,train,0,0,1"), std::string::npos);
}

WorkloadModel test_workload() {
  // Shaped like ogbn-products: sampling-bound baseline (even at 20 workers),
  // non-trivial transfer volume, GPU compute a minority share.
  WorkloadModel w;
  w.dataset = "unit";
  w.num_batches = 200;
  w.sample_pyg_s = 0.80;
  w.sample_salient_s = 0.32;  // 2.5x (Table 2 ratio)
  w.slice_s = 0.04;
  w.pin_copy_s = 0.04;
  w.ipc_s = 0.02;
  w.transfer_mb = 250;
  w.train_gpu_s = 0.012;
  w.grad_mb = 1.2;
  return w;
}

WorkloadModel gpu_bound_workload() {
  // Same preparation profile but heavier GPU compute, so the fully
  // optimized pipeline becomes GPU-bound (the §4.4 regime).
  WorkloadModel w = test_workload();
  w.train_gpu_s = 0.030;
  return w;
}

TEST(PipelineModel, AblationImprovesMonotonically) {
  // Table 3: each added optimization reduces per-epoch time.
  const WorkloadModel w = test_workload();
  const HwProfile hw;
  const double none =
      simulate_epoch(w, hw, SystemOptions::pyg(), 20, 1).epoch_seconds;
  const double fast =
      simulate_epoch(w, hw, {true, false, false}, 20, 1).epoch_seconds;
  const double shared =
      simulate_epoch(w, hw, {true, true, false}, 20, 1).epoch_seconds;
  const double full =
      simulate_epoch(w, hw, SystemOptions::salient(), 20, 1).epoch_seconds;
  EXPECT_LT(fast, none);
  EXPECT_LT(shared, fast);
  EXPECT_LT(full, shared);
  // headline: ~3x end-to-end (Figure 4 reports 3x-3.4x)
  EXPECT_GT(none / full, 2.0);
  EXPECT_LT(none / full, 6.0);
}

TEST(PipelineModel, SalientEpochApproachesGpuBound) {
  // §4.4: with SALIENT "the end-to-end training time per epoch is nearly
  // equal to the time for the slowest component in isolation" — here the
  // GPU compute.
  const WorkloadModel w = gpu_bound_workload();
  const HwProfile hw;
  const auto r = simulate_epoch(w, hw, SystemOptions::salient(), 20, 1);
  const double gpu_total =
      static_cast<double>(w.num_batches) * w.train_gpu_s;
  EXPECT_LT(r.epoch_seconds, gpu_total * 1.35);
  EXPECT_GE(r.epoch_seconds, gpu_total * 0.99);
}

TEST(PipelineModel, BaselineIsPrepAndTransferDominated) {
  // Table 1: for the PyG baseline only ~28% of blocking time is GPU train.
  const WorkloadModel w = test_workload();
  const auto r = simulate_epoch(w, HwProfile{}, SystemOptions::pyg(), 20, 1);
  const double total =
      r.blocked_prep_s + r.blocked_transfer_s + r.blocked_train_s;
  EXPECT_GT((r.blocked_prep_s + r.blocked_transfer_s) / total, 0.5);
  EXPECT_LT(r.blocked_train_s / total, 0.5);
}

TEST(PipelineModel, MoreWorkersHelpBaselineUntilSaturation) {
  const WorkloadModel w = test_workload();
  const HwProfile hw;
  const double w1 =
      simulate_epoch(w, hw, SystemOptions::pyg(), 1, 1).epoch_seconds;
  const double w10 =
      simulate_epoch(w, hw, SystemOptions::pyg(), 10, 1).epoch_seconds;
  const double w20 =
      simulate_epoch(w, hw, SystemOptions::pyg(), 20, 1).epoch_seconds;
  EXPECT_GT(w1 / w10, 3.0);   // strong scaling while sampling-bound
  EXPECT_GE(w10, w20 * 0.95); // saturated (higher startup latency at P=20)
}

TEST(PipelineModel, MultiGpuScalingShape) {
  // Figure 5's shape: speedup grows with GPU count but sublinearly, and a
  // larger workload (more batches) scales better than a small one.
  WorkloadModel big = test_workload();
  big.num_batches = 1172;  // papers-scale batch count
  WorkloadModel small = test_workload();
  small.num_batches = 88;  // arxiv-scale
  const HwProfile hw;
  auto speedup = [&](const WorkloadModel& w, int gpus) {
    const double t1 =
        simulate_epoch(w, hw, SystemOptions::salient(), 20, 1).epoch_seconds;
    const double tg =
        simulate_epoch(w, hw, SystemOptions::salient(), 20, gpus)
            .epoch_seconds;
    return t1 / tg;
  };
  const double big16 = speedup(big, 16);
  const double small16 = speedup(small, 16);
  EXPECT_GT(big16, 4.0);
  EXPECT_LT(big16, 16.0);      // sublinear
  EXPECT_GT(big16, small16);   // big graphs scale better (paper §6)
  const double big2 = speedup(big, 2);
  const double big8 = speedup(big, 8);
  EXPECT_GT(big8, big2);       // monotone in GPU count
}

TEST(PipelineModel, TimelineShowsOverlapOnlyWhenPipelined) {
  const WorkloadModel w = test_workload();
  const HwProfile hw;
  auto overlap_fraction = [](const EpochSimResult& r) {
    // fraction of GPU busy time overlapped with PCIe busy time
    double gpu_busy = 0, overlap = 0;
    std::vector<std::pair<double, double>> xfers;
    for (const auto& s : r.timeline.spans()) {
      if (s.lane.rfind("pcie", 0) == 0) xfers.emplace_back(s.start, s.end);
    }
    for (const auto& s : r.timeline.spans()) {
      if (s.lane.rfind("gpu", 0) != 0) continue;
      gpu_busy += s.end - s.start;
      for (const auto& [b, e] : xfers) {
        const double lo = std::max(s.start, b), hi = std::min(s.end, e);
        if (hi > lo) overlap += hi - lo;
      }
    }
    return gpu_busy > 0 ? overlap / gpu_busy : 0.0;
  };
  const auto blocking =
      simulate_epoch(w, hw, {true, true, false}, 20, 1);
  const auto pipelined =
      simulate_epoch(w, hw, SystemOptions::salient(), 20, 1);
  EXPECT_LT(overlap_fraction(blocking), 0.05);
  EXPECT_GT(overlap_fraction(pipelined), 0.5);
}

TEST(PipelineModel, RejectsBadArguments) {
  EXPECT_THROW(simulate_epoch(WorkloadModel{}, HwProfile{},
                              SystemOptions::pyg(), 1, 1),
               std::invalid_argument);
  EXPECT_THROW(simulate_epoch(test_workload(), HwProfile{},
                              SystemOptions::pyg(), 0, 1),
               std::invalid_argument);
}

TEST(PaperWorkload, MatchesPublishedEpochShape) {
  // Validate the simulator against Table 1's blocking breakdown for the
  // baseline on ogbn-products: epoch ~8.6s, prep ~46%, transfer ~26%,
  // train ~28% (generous bands — this is a model, not a replay).
  const WorkloadModel w = paper_workload("products");
  const auto r = simulate_epoch(w, HwProfile{}, SystemOptions::pyg(), 20, 1);
  EXPECT_GT(r.epoch_seconds, 4.0);
  EXPECT_LT(r.epoch_seconds, 16.0);
  const double total =
      r.blocked_prep_s + r.blocked_transfer_s + r.blocked_train_s;
  EXPECT_GT(r.blocked_prep_s / total, 0.25);
  EXPECT_GT(r.blocked_train_s / total, 0.10);
  // SALIENT on the same workload: ~3x faster (Table 3: 8.6 -> 2.8).
  const auto s =
      simulate_epoch(w, HwProfile{}, SystemOptions::salient(), 20, 1);
  EXPECT_GT(r.epoch_seconds / s.epoch_seconds, 2.0);
  EXPECT_THROW(paper_workload("mnist"), std::invalid_argument);
}

TEST(Calibration, MeasuresSaneCosts) {
  DatasetConfig c;
  c.name = "calib-test";
  c.num_nodes = 3000;
  c.feature_dim = 16;
  c.num_classes = 4;
  c.avg_degree = 8;
  c.seed = 3;
  Dataset ds = generate_dataset(c);
  CalibrationConfig cc;
  cc.batch_size = 256;
  cc.fanouts = {5, 5};
  cc.measure_batches = 2;
  cc.hidden_channels = 16;
  const WorkloadModel w = calibrate(ds, cc);
  EXPECT_GT(w.sample_pyg_s, 0.0);
  EXPECT_GT(w.sample_salient_s, 0.0);
  // the fast sampler must actually be faster on this machine
  EXPECT_LT(w.sample_salient_s, w.sample_pyg_s);
  EXPECT_GT(w.slice_s, 0.0);
  EXPECT_GT(w.transfer_mb, 0.0);
  EXPECT_GT(w.train_gpu_s, 0.0);
  EXPECT_GT(w.grad_mb, 0.0);
  EXPECT_EQ(w.num_batches,
            static_cast<std::int64_t>(ds.train_idx.size()) / 256);
}

}  // namespace
}  // namespace salient::sim
