// Tests for the tensor library: construction, views, dtype conversion, and
// every kernel in ops.h (validated against naive references), including the
// CSR aggregation kernels and matmul with all transpose combinations.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace salient {
namespace {

using ops::matmul;

TEST(Tensor, ConstructionAndShape) {
  Tensor t({3, 4}, DType::kF32);
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 3);
  EXPECT_EQ(t.size(1), 4);
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.numel(), 12);
  EXPECT_EQ(t.nbytes(), 48u);
  // zero-initialized
  for (std::int64_t i = 0; i < 3; ++i)
    for (std::int64_t j = 0; j < 4; ++j) EXPECT_EQ(t.at<float>(i, j), 0.0f);
}

TEST(Tensor, UndefinedAndErrors) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  Tensor a({2, 2}, DType::kF32);
  EXPECT_THROW(a.data<double>(), std::runtime_error);  // dtype mismatch
  EXPECT_THROW(a.at<float>(2, 0), std::out_of_range);
  EXPECT_THROW(a.size(3), std::out_of_range);
}

TEST(Tensor, FactoriesAndFill) {
  Tensor ones = Tensor::ones({2, 2});
  EXPECT_FLOAT_EQ(ones.at<float>(1, 1), 1.0f);
  Tensor full = Tensor::full({3}, 2.5);
  EXPECT_FLOAT_EQ(full.at<float>(2), 2.5f);
  Tensor ar = Tensor::arange(5);
  EXPECT_EQ(ar.at<std::int64_t>(4), 4);
  Tensor r = Tensor::randn({100, 10}, 3, 1.0);
  const double mean = ops::mean_all(r);
  EXPECT_NEAR(mean, 0.0, 0.15);
  Tensor u = Tensor::uniform({1000}, 5, 2.0, 4.0);
  for (float v : u.span<float>()) {
    ASSERT_GE(v, 2.0f);
    ASSERT_LT(v, 4.0f);
  }
}

TEST(Tensor, CloneIsDeepAndCopyIsShallow) {
  Tensor a = Tensor::full({2, 2}, 1.0);
  Tensor shallow = a;
  Tensor deep = a.clone();
  a.at<float>(0, 0) = 9.0f;
  EXPECT_FLOAT_EQ(shallow.at<float>(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(deep.at<float>(0, 0), 1.0f);
}

TEST(Tensor, NarrowRowsSharesStorage) {
  Tensor a = Tensor::zeros({4, 3});
  Tensor view = a.narrow_rows(1, 2);
  EXPECT_EQ(view.size(0), 2);
  EXPECT_EQ(view.size(1), 3);
  view.at<float>(0, 0) = 5.0f;
  EXPECT_FLOAT_EQ(a.at<float>(1, 0), 5.0f);
  EXPECT_THROW(a.narrow_rows(3, 2), std::out_of_range);
}

TEST(Tensor, Reshape) {
  Tensor a = Tensor::arange(6);
  Tensor m = a.reshape({2, 3});
  EXPECT_EQ(m.at<std::int64_t>(1, 2), 5);
  EXPECT_THROW(a.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, DtypeConversionRoundTrip) {
  Tensor f32 = Tensor::uniform({50}, 11, -3.0, 3.0);
  Tensor f16 = f32.to(DType::kF16);
  Tensor back = f16.to(DType::kF32);
  // Half has ~3 decimal digits: tolerance 2^-10 relative.
  EXPECT_TRUE(allclose(back, f32, 1e-3, 1e-3));
  Tensor f64 = f32.to(DType::kF64);
  EXPECT_EQ(f64.dtype(), DType::kF64);
  EXPECT_NEAR(f64.at<double>(0), static_cast<double>(f32.at<float>(0)), 0);
}

TEST(Tensor, WrapStorage) {
  auto storage = std::make_shared<Storage>(64);
  Tensor t = Tensor::wrap_storage(storage, {4, 2}, DType::kF32);
  EXPECT_EQ(t.numel(), 8);
  EXPECT_THROW(Tensor::wrap_storage(storage, {100}, DType::kF64),
               std::invalid_argument);
}

// --- elementwise ops ------------------------------------------------------------

TEST(Ops, AddSubMulScale) {
  Tensor a = Tensor::from_vector<float>({1, 2, 3}, {3});
  Tensor b = Tensor::from_vector<float>({4, 5, 6}, {3});
  EXPECT_TRUE(allclose(ops::add(a, b),
                       Tensor::from_vector<float>({5, 7, 9}, {3})));
  EXPECT_TRUE(allclose(ops::sub(a, b),
                       Tensor::from_vector<float>({-3, -3, -3}, {3})));
  EXPECT_TRUE(allclose(ops::mul(a, b),
                       Tensor::from_vector<float>({4, 10, 18}, {3})));
  EXPECT_TRUE(allclose(ops::scale(a, 2.0),
                       Tensor::from_vector<float>({2, 4, 6}, {3})));
  EXPECT_TRUE(allclose(ops::add_scaled(a, b, 0.5),
                       Tensor::from_vector<float>({3, 4.5, 6}, {3})));
  Tensor c = a.clone();
  ops::axpy_(c, b, 2.0);
  EXPECT_TRUE(allclose(c, Tensor::from_vector<float>({9, 12, 15}, {3})));
  Tensor wrong({2}, DType::kF32);
  EXPECT_THROW(ops::add(a, wrong), std::runtime_error);
}

TEST(Ops, UnaryKernels) {
  Tensor x = Tensor::from_vector<float>({-2, -0.5, 0, 1, 3}, {5});
  EXPECT_TRUE(allclose(ops::relu(x),
                       Tensor::from_vector<float>({0, 0, 0, 1, 3}, {5})));
  EXPECT_TRUE(allclose(ops::relu_mask(x),
                       Tensor::from_vector<float>({0, 0, 0, 1, 1}, {5})));
  EXPECT_TRUE(allclose(
      ops::leaky_relu(x, 0.1),
      Tensor::from_vector<float>({-0.2f, -0.05f, 0, 1, 3}, {5})));
  const Tensor e = ops::exp(x);
  EXPECT_NEAR(e.at<float>(4), std::exp(3.0f), 1e-4);
  const Tensor l = ops::log(ops::exp(x));
  EXPECT_TRUE(allclose(l, x, 1e-5, 1e-5));
  const Tensor s = ops::sqrt(Tensor::from_vector<float>({4, 9}, {2}));
  EXPECT_TRUE(allclose(s, Tensor::from_vector<float>({2, 3}, {2})));
}

TEST(Ops, BroadcastAndReductions) {
  Tensor x = Tensor::from_vector<float>({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::from_vector<float>({10, 20}, {2});
  EXPECT_TRUE(allclose(ops::add_row_broadcast(x, b),
                       Tensor::from_vector<float>({11, 22, 13, 24}, {2, 2})));
  EXPECT_TRUE(
      allclose(ops::sum_rows(x), Tensor::from_vector<float>({4, 6}, {2})));
  EXPECT_DOUBLE_EQ(ops::sum_all(x), 10.0);
  EXPECT_DOUBLE_EQ(ops::mean_all(x), 2.5);
}

TEST(Ops, GatherScatterRows) {
  Tensor x = Tensor::from_vector<float>({1, 2, 3, 4, 5, 6}, {3, 2});
  Tensor idx = Tensor::from_vector<std::int64_t>({2, 0, 2}, {3});
  Tensor g = ops::gather_rows(x, idx);
  EXPECT_TRUE(allclose(g, Tensor::from_vector<float>({5, 6, 1, 2, 5, 6},
                                                     {3, 2})));
  Tensor dst = Tensor::zeros({3, 2});
  ops::scatter_add_rows_(dst, idx, g);
  // row 2 gets (5,6)+(5,6), row 0 gets (1,2)
  EXPECT_TRUE(allclose(dst, Tensor::from_vector<float>({1, 2, 0, 0, 10, 12},
                                                       {3, 2})));
  Tensor bad_idx = Tensor::from_vector<std::int64_t>({5}, {1});
  EXPECT_THROW(ops::gather_rows(x, bad_idx), std::out_of_range);
}

TEST(Ops, GatherRowsWorksOnF16) {
  Tensor f32 = Tensor::uniform({4, 3}, 2, -1, 1);
  Tensor f16 = f32.to(DType::kF16);
  Tensor idx = Tensor::from_vector<std::int64_t>({3, 1}, {2});
  Tensor g = ops::gather_rows(f16, idx);
  EXPECT_EQ(g.dtype(), DType::kF16);
  EXPECT_EQ(g.at<Half>(0, 0).bits, f16.at<Half>(3, 0).bits);
}

TEST(Ops, ConcatCols) {
  Tensor a = Tensor::from_vector<float>({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::from_vector<float>({5, 6}, {2, 1});
  Tensor c = ops::concat_cols({a, b});
  EXPECT_TRUE(allclose(c, Tensor::from_vector<float>({1, 2, 5, 3, 4, 6},
                                                     {2, 3})));
  EXPECT_THROW(ops::concat_cols({}), std::runtime_error);
}

TEST(Ops, LogSoftmaxRowsSumsToOne) {
  Tensor x = Tensor::uniform({5, 7}, 9, -5, 5);
  Tensor y = ops::log_softmax_rows(x);
  for (std::int64_t i = 0; i < 5; ++i) {
    double sum = 0;
    for (std::int64_t j = 0; j < 7; ++j) sum += std::exp(y.at<float>(i, j));
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  // shift invariance
  Tensor shifted = ops::log_softmax_rows(
      ops::add(x, Tensor::full({5, 7}, 100.0)));
  EXPECT_TRUE(allclose(shifted, y, 1e-4, 1e-4));
}

TEST(Ops, NllLossAndBackward) {
  Tensor logp = ops::log_softmax_rows(Tensor::uniform({4, 3}, 13, -1, 1));
  Tensor target = Tensor::from_vector<std::int64_t>({0, 2, 1, 1}, {4});
  double expected = 0;
  for (int i = 0; i < 4; ++i) {
    expected -= logp.at<float>(i, target.at<std::int64_t>(i));
  }
  expected /= 4;
  EXPECT_NEAR(ops::nll_loss_mean(logp, target), expected, 1e-6);
  Tensor g = ops::nll_loss_mean_backward(logp, target);
  EXPECT_FLOAT_EQ(g.at<float>(0, 0), -0.25f);
  EXPECT_FLOAT_EQ(g.at<float>(0, 1), 0.0f);
}

TEST(Ops, ArgmaxAndAccuracy) {
  Tensor logits =
      Tensor::from_vector<float>({0.1f, 0.9f, 0.2f, 0.8f, 0.1f, 0.1f}, {2, 3});
  Tensor pred = ops::argmax_rows(logits);
  EXPECT_EQ(pred.at<std::int64_t>(0), 1);
  EXPECT_EQ(pred.at<std::int64_t>(1), 0);
  Tensor target = Tensor::from_vector<std::int64_t>({1, 2}, {2});
  EXPECT_DOUBLE_EQ(ops::accuracy(logits, target), 0.5);
}

TEST(Ops, DropoutMaskStatistics) {
  const double p = 0.3;
  Tensor m = ops::dropout_mask({10000}, p, 77);
  std::int64_t zeros = 0;
  for (float v : m.span<float>()) {
    ASSERT_TRUE(v == 0.0f || std::abs(v - 1.0f / 0.7f) < 1e-5);
    zeros += (v == 0.0f);
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, p, 0.02);
  EXPECT_THROW(ops::dropout_mask({4}, 1.0, 1), std::invalid_argument);
}

// --- matmul ---------------------------------------------------------------------

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  Tensor c = Tensor::zeros({m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t p = 0; p < k; ++p)
      for (std::int64_t j = 0; j < n; ++j)
        c.at<float>(i, j) += a.at<float>(i, p) * b.at<float>(p, j);
  return c;
}

Tensor transpose(const Tensor& a) {
  Tensor t = Tensor::zeros({a.size(1), a.size(0)});
  for (std::int64_t i = 0; i < a.size(0); ++i)
    for (std::int64_t j = 0; j < a.size(1); ++j)
      t.at<float>(j, i) = a.at<float>(i, j);
  return t;
}

class MatmulTransposeTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(MatmulTransposeTest, MatchesNaiveReference) {
  const auto [ta, tb] = GetParam();
  const std::int64_t m = 17, k = 23, n = 13;
  Tensor a = Tensor::uniform(ta ? std::vector<std::int64_t>{k, m}
                                : std::vector<std::int64_t>{m, k},
                             1, -1, 1);
  Tensor b = Tensor::uniform(tb ? std::vector<std::int64_t>{n, k}
                                : std::vector<std::int64_t>{k, n},
                             2, -1, 1);
  Tensor got = matmul(a, b, ta, tb);
  Tensor want = naive_matmul(ta ? transpose(a) : a, tb ? transpose(b) : b);
  EXPECT_TRUE(allclose(got, want, 1e-4, 1e-4));
}

INSTANTIATE_TEST_SUITE_P(AllTransposeCombos, MatmulTransposeTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Matmul, LargeBlockedMatchesNaive) {
  Tensor a = Tensor::uniform({150, 300}, 4, -1, 1);
  Tensor b = Tensor::uniform({300, 90}, 5, -1, 1);
  EXPECT_TRUE(allclose(matmul(a, b), naive_matmul(a, b), 1e-3, 1e-3));
}

TEST(Matmul, ShapeErrors) {
  Tensor a({2, 3}, DType::kF32), b({4, 5}, DType::kF32);
  EXPECT_THROW(matmul(a, b), std::runtime_error);
  Tensor i({3, 3}, DType::kI64);
  EXPECT_THROW(matmul(i, i), std::runtime_error);
}

// --- CSR aggregation ------------------------------------------------------------

TEST(Ops, SpmmMeanAndSum) {
  // 3 destinations, 4 sources; dst0 <- {0,1}, dst1 <- {}, dst2 <- {3,3?no}
  std::vector<std::int64_t> indptr{0, 2, 2, 3};
  std::vector<std::int64_t> indices{0, 1, 3};
  Tensor x = Tensor::from_vector<float>({1, 2, 3, 4, 5, 6, 7, 8}, {4, 2});
  Tensor mean = ops::spmm_mean(indptr, indices, x, 3);
  EXPECT_TRUE(allclose(mean, Tensor::from_vector<float>({2, 3, 0, 0, 7, 8},
                                                        {3, 2})));
  Tensor sum = ops::spmm_sum(indptr, indices, x, 3);
  EXPECT_TRUE(allclose(sum, Tensor::from_vector<float>({4, 6, 0, 0, 7, 8},
                                                       {3, 2})));
}

TEST(Ops, SpmmBackwardScattersCorrectly) {
  std::vector<std::int64_t> indptr{0, 2, 3};
  std::vector<std::int64_t> indices{0, 1, 0};
  Tensor g = Tensor::from_vector<float>({1, 1, 2, 2}, {2, 2});
  Tensor gx_mean = ops::spmm_mean_backward(indptr, indices, g, 3);
  // src0: 0.5*g0 + 1.0*g1 = (0.5+2, 0.5+2); src1: 0.5*g0; src2: 0
  EXPECT_TRUE(allclose(
      gx_mean,
      Tensor::from_vector<float>({2.5f, 2.5f, 0.5f, 0.5f, 0, 0}, {3, 2})));
  Tensor gx_sum = ops::spmm_sum_backward(indptr, indices, g, 3);
  EXPECT_TRUE(allclose(
      gx_sum, Tensor::from_vector<float>({3, 3, 1, 1, 0, 0}, {3, 2})));
}

TEST(Ops, SpmmValidatesIndices) {
  std::vector<std::int64_t> indptr{0, 1};
  std::vector<std::int64_t> indices{7};
  Tensor x = Tensor::zeros({2, 2});
  EXPECT_THROW(ops::spmm_mean(indptr, indices, x, 1), std::out_of_range);
}

}  // namespace
}  // namespace salient
