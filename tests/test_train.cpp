// Training-loop tests: the pipelined SALIENT execution produces EXACTLY the
// same parameters as the blocking execution (same seeds), loss decreases,
// learned accuracy beats chance, and both inference paths (sampled /
// layer-wise full-neighborhood) work and agree closely.
#include <gtest/gtest.h>

#include "graph/dataset.h"
#include "nn/models.h"
#include "train/inference.h"
#include "train/trainer.h"

namespace salient {
namespace {

Dataset& train_dataset() {
  static Dataset ds = [] {
    DatasetConfig c;
    c.name = "train-test";
    c.num_nodes = 6000;
    c.feature_dim = 24;
    c.num_classes = 5;
    c.avg_degree = 10;
    c.p_in = 0.85;
    c.feature_signal = 0.4;
    c.feature_noise = 0.8;
    c.seed = 11;
    return generate_dataset(c);
  }();
  return ds;
}

nn::ModelConfig model_config(const Dataset& ds, std::uint64_t seed = 9) {
  nn::ModelConfig mc;
  mc.in_channels = ds.feature_dim;
  mc.hidden_channels = 32;
  mc.out_channels = ds.num_classes;
  mc.num_layers = 2;
  mc.seed = seed;
  return mc;
}

TrainConfig train_config() {
  TrainConfig tc;
  tc.loader.batch_size = 256;
  tc.loader.fanouts = {8, 5};
  tc.loader.num_workers = 1;
  tc.loader.seed = 21;
  tc.lr = 5e-3;
  return tc;
}

TEST(Trainer, PipelinedMatchesBlockingExactly) {
  // The pipelined execution must be a pure performance transformation: with
  // one worker and identical seeds, final parameters are bit-identical to
  // the blocking execution.
  const Dataset& ds = train_dataset();

  auto run = [&](ExecutionMode mode) {
    auto model = nn::make_model("sage", model_config(ds));
    DeviceSim device;
    TrainConfig tc = train_config();
    tc.execution = mode;
    tc.loader_kind = LoaderKind::kSalient;
    Trainer trainer(ds, model, device, tc);
    trainer.train_epoch(0);
    trainer.train_epoch(1);
    return model;
  };
  auto blocking = run(ExecutionMode::kBlocking);
  auto pipelined = run(ExecutionMode::kPipelined);

  const auto pa = blocking->parameters();
  const auto pb = pipelined->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(allclose(pa[i].data(), pb[i].data(), 0.0, 0.0))
        << "parameter " << i << " diverged";
  }
}

TEST(Trainer, LossDecreasesOverEpochs) {
  const Dataset& ds = train_dataset();
  auto model = nn::make_model("sage", model_config(ds));
  DeviceSim device;
  TrainConfig tc = train_config();
  Trainer trainer(ds, model, device, tc);
  EpochStats first = trainer.train_epoch(0);
  EpochStats last;
  for (int e = 1; e < 5; ++e) last = trainer.train_epoch(e);
  EXPECT_LT(last.mean_loss, first.mean_loss * 0.8);
  EXPECT_GT(last.train_accuracy, 0.5);  // chance = 0.2
  EXPECT_GT(first.num_batches, 0);
  EXPECT_GT(first.transfer_bytes, 0u);
}

TEST(Trainer, BaselineLoaderAlsoLearns) {
  const Dataset& ds = train_dataset();
  auto model = nn::make_model("sage", model_config(ds, 31));
  DeviceSim device;
  TrainConfig tc = train_config();
  tc.loader_kind = LoaderKind::kBaseline;
  tc.execution = ExecutionMode::kBlocking;
  tc.loader.num_workers = 2;
  Trainer trainer(ds, model, device, tc);
  EpochStats first = trainer.train_epoch(0);
  EpochStats last;
  for (int e = 1; e < 4; ++e) last = trainer.train_epoch(e);
  EXPECT_LT(last.mean_loss, first.mean_loss);
  // blocking stats attribute time to all three phases
  EXPECT_GT(first.blocking.total(Phase::kSample), 0.0);
  EXPECT_GT(first.blocking.total(Phase::kTransfer), 0.0);
  EXPECT_GT(first.blocking.total(Phase::kTrain), 0.0);
}

TEST(Trainer, MultiWorkerPipelinedLearns) {
  const Dataset& ds = train_dataset();
  auto model = nn::make_model("sage", model_config(ds, 41));
  DeviceSim device;
  TrainConfig tc = train_config();
  tc.loader.num_workers = 3;
  tc.pipeline_depth = 3;
  Trainer trainer(ds, model, device, tc);
  EpochStats first = trainer.train_epoch(0);
  EpochStats last;
  for (int e = 1; e < 4; ++e) last = trainer.train_epoch(e);
  EXPECT_LT(last.mean_loss, first.mean_loss);
}

TEST(Inference, SampledAccuracyBeatsChanceAfterTraining) {
  const Dataset& ds = train_dataset();
  auto model = nn::make_model("sage", model_config(ds, 51));
  DeviceSim device;
  Trainer trainer(ds, model, device, train_config());
  for (int e = 0; e < 5; ++e) trainer.train_epoch(e);

  const std::vector<std::int64_t> fanouts{10, 10};
  auto result = evaluate_sampled(*model, ds, ds.test_idx, fanouts, 256, 7);
  EXPECT_GT(result.accuracy, 0.5);
  EXPECT_EQ(result.predictions.size(), ds.test_idx.size());
}

TEST(Inference, SampledIsDeterministicUnderFixedSeed) {
  // Per-batch seeding makes sampled inference reproducible: the same seed
  // gives bit-identical predictions on repeat runs, and (with fanouts small
  // enough to actually subsample) different seeds give different samples.
  const Dataset& ds = train_dataset();
  auto model = nn::make_model("sage", model_config(ds, 81));

  const std::vector<std::int64_t> fanouts{4, 4};
  std::vector<NodeId> nodes(ds.test_idx.begin(), ds.test_idx.begin() + 400);
  auto a = evaluate_sampled(*model, ds, nodes, fanouts, 128, 12345);
  auto b = evaluate_sampled(*model, ds, nodes, fanouts, 128, 12345);
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.accuracy, b.accuracy);
  // Batch size changes batch boundaries (hence per-batch seeds) but must not
  // change the *shape* of the result.
  auto c = evaluate_sampled(*model, ds, nodes, fanouts, 64, 12345);
  EXPECT_EQ(c.predictions.size(), a.predictions.size());
}

TEST(Inference, LayerwiseMatchesHighFanoutSampled) {
  const Dataset& ds = train_dataset();
  auto model = nn::make_model("sage", model_config(ds, 61));
  DeviceSim device;
  Trainer trainer(ds, model, device, train_config());
  for (int e = 0; e < 5; ++e) trainer.train_epoch(e);

  auto layerwise = evaluate_layerwise(*model, ds, ds.test_idx, 1024);
  const std::vector<std::int64_t> huge{10000, 10000};
  auto sampled = evaluate_sampled(*model, ds, ds.test_idx, huge, 256, 3);
  // Full-fanout sampling IS the full neighborhood: predictions must agree
  // (both deterministic in eval mode).
  ASSERT_EQ(layerwise.predictions.size(), sampled.predictions.size());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < layerwise.predictions.size(); ++i) {
    agree += (layerwise.predictions[i] == sampled.predictions[i]);
  }
  EXPECT_GT(static_cast<double>(agree) /
                static_cast<double>(layerwise.predictions.size()),
            0.99);
  EXPECT_NEAR(layerwise.accuracy, sampled.accuracy, 0.01);
}

TEST(Inference, AccuracyImprovesWithFanout) {
  // The Table 6 phenomenon: small fanouts lose a little accuracy; by
  // fanout ~20 it saturates near the full-neighborhood value.
  const Dataset& ds = train_dataset();
  auto model = nn::make_model("sage", model_config(ds, 71));
  DeviceSim device;
  Trainer trainer(ds, model, device, train_config());
  for (int e = 0; e < 6; ++e) trainer.train_epoch(e);

  auto acc = [&](std::int64_t f) {
    const std::vector<std::int64_t> fanouts{f, f};
    return evaluate_sampled(*model, ds, ds.test_idx, fanouts, 256, 99)
        .accuracy;
  };
  const double a2 = acc(2);
  const double a20 = acc(20);
  const double full = evaluate_layerwise(*model, ds, ds.test_idx).accuracy;
  EXPECT_GT(a20, a2 - 0.02);            // monotone-ish
  EXPECT_NEAR(a20, full, 0.03);         // saturation at fanout 20
  EXPECT_GT(full, 0.5);
}

TEST(Inference, LayerwiseRejectsDenseModels) {
  const Dataset& ds = train_dataset();
  auto model = nn::make_model("sage-ri", model_config(ds, 81));
  EXPECT_THROW(evaluate_layerwise(*model, ds, ds.test_idx),
               std::invalid_argument);
  EXPECT_GT(layerwise_memory_bytes(*model, ds, 32),
            layerwise_memory_bytes(*nn::make_model("sage", model_config(ds)),
                                   ds, 32));
}

TEST(Trainer, FeatureCachedTrainingMatchesUncachedExactly) {
  // The device feature cache is a pure transfer optimization: with identical
  // seeds, training with and without it must produce bit-identical models
  // while moving fewer bytes over the (simulated) PCIe link.
  const Dataset& ds = train_dataset();
  auto run = [&](std::int64_t cache_nodes, std::size_t* bytes) {
    auto model = nn::make_model("sage", model_config(ds));
    DeviceSim device;
    TrainConfig tc = train_config();
    tc.feature_cache_nodes = cache_nodes;
    Trainer trainer(ds, model, device, tc);
    trainer.train_epoch(0);
    trainer.train_epoch(1);
    if (bytes != nullptr) *bytes = device.dma().bytes_transferred();
    return model;
  };
  std::size_t bytes_plain = 0, bytes_cached = 0;
  auto plain = run(0, &bytes_plain);
  auto cached = run(ds.graph.num_nodes() / 4, &bytes_cached);
  const auto pa = plain->parameters();
  const auto pb = cached->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(allclose(pa[i].data(), pb[i].data(), 0.0, 0.0))
        << "parameter " << i;
  }
  EXPECT_LT(bytes_cached, bytes_plain);
}

TEST(Trainer, PipelinedInferenceMatchesDirectEvaluation) {
  const Dataset& ds = train_dataset();
  auto model = nn::make_model("sage", model_config(ds, 55));
  DeviceSim device;
  Trainer trainer(ds, model, device, train_config());
  for (int e = 0; e < 4; ++e) trainer.train_epoch(e);

  const std::vector<std::int64_t> fanouts{20, 20};
  const auto pipeline = trainer.inference_epoch(ds.test_idx, fanouts, 3);
  const auto direct = evaluate_sampled(*model, ds, ds.test_idx, fanouts,
                                       trainer.config().loader.batch_size, 3);
  // Same model, same fanout; sampling seeds differ per path, so allow a
  // small statistical gap.
  EXPECT_NEAR(pipeline.accuracy, direct.accuracy, 0.05);
  EXPECT_GT(pipeline.accuracy, 0.5);
  EXPECT_EQ(pipeline.num_batches,
            static_cast<std::int64_t>(
                (ds.test_idx.size() + 255) / 256));
  EXPECT_GT(pipeline.transfer_bytes, 0u);
}

TEST(Trainer, LazySamplingReplaysEpochsAndStillLearns) {
  const Dataset& ds = train_dataset();
  auto model = nn::make_model("sage", model_config(ds, 65));
  DeviceSim device;
  TrainConfig tc = train_config();
  tc.sampling_period = 3;  // resample on epochs 0 and 3; replay 1,2,4,5
  Trainer trainer(ds, model, device, tc);
  const EpochStats fresh = trainer.train_epoch(0);
  const EpochStats replay1 = trainer.train_epoch(1);
  const EpochStats replay2 = trainer.train_epoch(2);
  const EpochStats fresh2 = trainer.train_epoch(3);
  EpochStats last;
  for (int e = 4; e < 8; ++e) last = trainer.train_epoch(e);

  // Replay epochs skip batch preparation entirely.
  EXPECT_EQ(replay1.num_batches, fresh.num_batches);
  EXPECT_EQ(replay2.num_batches, fresh.num_batches);
  EXPECT_DOUBLE_EQ(replay1.blocking.total(Phase::kSample), 0.0);
  EXPECT_DOUBLE_EQ(replay2.blocking.total(Phase::kSample), 0.0);
  EXPECT_EQ(fresh2.num_batches, fresh.num_batches);
  // And the lazy schedule still converges (LazyGCN's claim).
  EXPECT_LT(last.mean_loss, fresh.mean_loss * 0.8);
  EXPECT_GT(last.train_accuracy, 0.5);
}

TEST(Trainer, GatAndGinTrainWithoutError) {
  const Dataset& ds = train_dataset();
  for (const char* arch : {"gat", "gin", "sage-ri"}) {
    auto model = nn::make_model(arch, model_config(ds, 91));
    DeviceSim device;
    TrainConfig tc = train_config();
    tc.loader.batch_size = 512;  // fewer batches: keep the test quick
    Trainer trainer(ds, model, device, tc);
    EpochStats s = trainer.train_epoch(0);
    EXPECT_GT(s.num_batches, 0) << arch;
    EXPECT_TRUE(std::isfinite(s.mean_loss)) << arch;
  }
}

// --- compressed wire feature formats (LoaderConfig::feature_dtype) -----------

/// An f32-store dataset, so the f16/int8 wire formats genuinely lose
/// precision relative to the f32 wire (with the default f16 store every wire
/// dtype decompresses to the same values and the comparison is vacuous).
Dataset& f32_dataset() {
  static Dataset ds = [] {
    DatasetConfig c;
    c.name = "train-test-f32";
    c.num_nodes = 6000;
    c.feature_dim = 24;
    c.num_classes = 5;
    c.avg_degree = 10;
    c.p_in = 0.85;
    c.feature_signal = 0.4;
    c.feature_noise = 0.8;
    c.seed = 11;
    c.feature_dtype = DType::kF32;
    return generate_dataset(c);
  }();
  return ds;
}

std::shared_ptr<nn::GnnModel> train_with_wire(const Dataset& ds, DType wire,
                                              int epochs, EpochStats* last) {
  auto model = nn::make_model("sage", model_config(ds));
  DeviceSim device;
  TrainConfig tc = train_config();
  tc.loader.feature_dtype = wire;
  Trainer trainer(ds, model, device, tc);
  for (int e = 0; e < epochs; ++e) {
    EpochStats s = trainer.train_epoch(e);
    if (last != nullptr) *last = s;
  }
  return model;
}

TEST(WireDtype, RunToRunBitwiseReproducible) {
  // Compressed transport must not perturb determinism: two identical f16-wire
  // runs produce bit-identical parameters.
  const Dataset& ds = f32_dataset();
  auto a = train_with_wire(ds, DType::kF16, 2, nullptr);
  auto b = train_with_wire(ds, DType::kF16, 2, nullptr);
  const auto pa = a->parameters();
  const auto pb = b->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(allclose(pa[i].data(), pb[i].data(), 0.0, 0.0))
        << "parameter " << i;
  }
}

TEST(WireDtype, F16ConvergesWithinToleranceOfF32) {
  const Dataset& ds = f32_dataset();
  EpochStats f32_last, f16_last;
  train_with_wire(ds, DType::kF32, 4, &f32_last);
  train_with_wire(ds, DType::kF16, 4, &f16_last);
  // Both learn well past chance (0.2) and the compressed run lands within a
  // few points of the uncompressed one (f16 features carry ~11 bits).
  EXPECT_GT(f32_last.train_accuracy, 0.5);
  EXPECT_GT(f16_last.train_accuracy, 0.5);
  EXPECT_NEAR(f16_last.train_accuracy, f32_last.train_accuracy, 0.1);
  EXPECT_NEAR(f16_last.mean_loss, f32_last.mean_loss,
              0.2 * f32_last.mean_loss + 0.05);
}

TEST(WireDtype, Int8QuantizedWireTrains) {
  const Dataset& ds = f32_dataset();
  auto model = nn::make_model("sage", model_config(ds));
  DeviceSim device;
  TrainConfig tc = train_config();
  tc.loader.feature_dtype = DType::kInt8Q;
  Trainer trainer(ds, model, device, tc);
  const EpochStats first = trainer.train_epoch(0);
  EpochStats last;
  for (int e = 1; e < 4; ++e) last = trainer.train_epoch(e);
  EXPECT_TRUE(std::isfinite(last.mean_loss));
  EXPECT_LT(last.mean_loss, first.mean_loss * 0.9);
  EXPECT_GT(last.train_accuracy, 0.4);  // chance = 0.2
  // The quantized wire moves fewer bytes than an f32 wire would have.
  EXPECT_GT(first.transfer_bytes, 0u);
}

}  // namespace
}  // namespace salient
