// Tests for the util substrate: half conversion, RNGs, thread pool,
// lock-free MPMC queue, blocking queue, timers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/blocking_queue.h"
#include "util/half.h"
#include "util/mpmc_queue.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace salient {
namespace {

// --- half precision -----------------------------------------------------------

TEST(Half, RoundTripsExactHalfValues) {
  // Every finite half value must round-trip float->half->float exactly.
  int checked = 0;
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const Half h = Half::from_bits(static_cast<std::uint16_t>(bits));
    const float f = half_to_float(h);
    if (std::isnan(f)) continue;  // NaN payloads are canonicalized
    const Half back = float_to_half(f);
    ASSERT_EQ(back.bits, h.bits) << "bits=" << bits << " f=" << f;
    ++checked;
  }
  EXPECT_GT(checked, 63000);
}

TEST(Half, KnownValues) {
  EXPECT_EQ(float_to_half(0.0f).bits, 0x0000);
  EXPECT_EQ(float_to_half(-0.0f).bits, 0x8000);
  EXPECT_EQ(float_to_half(1.0f).bits, 0x3c00);
  EXPECT_EQ(float_to_half(-2.0f).bits, 0xc000);
  EXPECT_EQ(float_to_half(65504.0f).bits, 0x7bff);  // max finite half
  EXPECT_EQ(float_to_half(65536.0f).bits, 0x7c00);  // overflow -> inf
  EXPECT_EQ(float_to_half(1e-8f).bits & 0x7fff, 0x0000);  // underflow -> 0
  EXPECT_FLOAT_EQ(half_to_float(Half::from_bits(0x3555)), 0.33325195f);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10):
  // round-to-even picks 1.0 (even mantissa).
  EXPECT_EQ(float_to_half(1.0f + 0x1p-11f).bits, 0x3c00);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: even is 1+2^-9.
  EXPECT_EQ(float_to_half(1.0f + 3 * 0x1p-11f).bits, 0x3c02);
}

TEST(Half, SubnormalsAndInfinity) {
  const float smallest_subnormal = 0x1p-24f;
  EXPECT_EQ(float_to_half(smallest_subnormal).bits, 0x0001);
  EXPECT_FLOAT_EQ(half_to_float(Half::from_bits(0x0001)), 0x1p-24f);
  EXPECT_TRUE(std::isinf(half_to_float(Half::from_bits(0x7c00))));
  EXPECT_TRUE(std::isnan(half_to_float(Half::from_bits(0x7e00))));
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(NAN))));
}

TEST(Half, BulkConversion) {
  std::vector<float> src = {0.5f, -1.25f, 3.0f, 100.0f};
  std::vector<Half> mid(src.size());
  std::vector<float> dst(src.size());
  float_to_half_n(src.data(), mid.data(), src.size());
  half_to_float_n(mid.data(), dst.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_FLOAT_EQ(dst[i], src[i]);  // all chosen values are half-exact
  }
}

// --- RNGs --------------------------------------------------------------------

TEST(Rng, BoundedRandInRangeAndCoversValues) {
  Xoshiro256ss rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = bounded_rand(rng, 7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, Pcg32BoundedIsUnbiasedEnough) {
  Pcg32 rng(1);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[bounded_rand(rng, 5)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 5, n / 5 * 0.05);
  }
}

TEST(Rng, DeterministicForSeed) {
  Xoshiro256ss a(7), b(7), c(8);
  EXPECT_EQ(a(), b());
  Xoshiro256ss a2(7);
  (void)c();
  EXPECT_EQ(a2(), Xoshiro256ss(7)());
}

TEST(Rng, SplitMix64KnownSequenceDiffers) {
  SplitMix64 s(0);
  const auto v1 = s.next();
  const auto v2 = s.next();
  EXPECT_NE(v1, v2);
}

// --- thread pool ----------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndSingle) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  pool.parallel_for(0, 1, [&](std::int64_t b, std::int64_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(ThreadPool, SubmitRunsTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 50);
}

// --- MPMC queue -------------------------------------------------------------------

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  int v;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));  // empty
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  MpmcQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(MpmcQueue, ConcurrentProducersConsumersDeliverAllItems) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 5000;
  MpmcQueue<int> q(256);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = p * kPerProducer + i;
        while (!q.try_push(v)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int v;
      while (popped.load() < kProducers * kPerProducer) {
        if (q.try_pop(v)) {
          sum += v;
          ++popped;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// --- blocking queue ----------------------------------------------------------------

TEST(BlockingQueue, PushPopAcrossThreads) {
  BlockingQueue<int> q(2);
  std::thread producer([&q] {
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  int expected = 0;
  while (auto v = q.pop()) {
    EXPECT_EQ(*v, expected++);
  }
  EXPECT_EQ(expected, 100);
  producer.join();
}

TEST(BlockingQueue, CloseUnblocksProducer) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&q] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
}

TEST(BlockingQueue, TryPushShedsWhenFullWithoutConsuming) {
  BlockingQueue<std::unique_ptr<int>> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  ASSERT_TRUE(q.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(q.try_push(std::make_unique<int>(2)));
  // Full: try_push must fail immediately and leave the value intact, so the
  // producer can still complete the shed request itself.
  auto overflow = std::make_unique<int>(3);
  EXPECT_FALSE(q.try_push(overflow));
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(*overflow, 3);
  EXPECT_EQ(q.size(), 2u);
  // Draining one slot re-opens admission.
  EXPECT_NE(q.pop(), std::nullopt);
  EXPECT_TRUE(q.try_push(std::move(overflow)));
}

TEST(BlockingQueue, TryPushFailsAfterClose) {
  BlockingQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.try_push(1));
  EXPECT_TRUE(q.closed());
}

TEST(BlockingQueue, TryPopForTimesOutOnEmpty) {
  BlockingQueue<int> q(4);
  WallTimer t;
  EXPECT_EQ(q.try_pop_for(std::chrono::milliseconds(20)), std::nullopt);
  EXPECT_GE(t.seconds(), 0.015);
  // Zero timeout polls without blocking.
  EXPECT_EQ(q.try_pop_for(std::chrono::milliseconds(0)), std::nullopt);
}

TEST(BlockingQueue, TryPopForReturnsEarlyWhenItemArrives) {
  BlockingQueue<int> q(4);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(q.push(7));
  });
  const auto v = q.try_pop_for(std::chrono::seconds(5));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  producer.join();
}

TEST(BlockingQueue, TryPopForDrainsThenReportsClosed) {
  BlockingQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  q.close();
  EXPECT_EQ(q.try_pop_for(std::chrono::milliseconds(1)), 1);
  // Closed and drained: returns nullopt immediately, not after the timeout.
  WallTimer t;
  EXPECT_EQ(q.try_pop_for(std::chrono::seconds(10)), std::nullopt);
  EXPECT_LT(t.seconds(), 5.0);
}

// Regression test for the explicit wait-loop rewrite (the condition-variable
// predicates became plain loops for the thread-safety analysis): close()
// must not discard the backlog — consumers drain it, then see end-of-queue.
TEST(BlockingQueue, PopDrainsBacklogAfterClose) {
  BlockingQueue<int> q(8);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.push(i));
  q.close();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_EQ(q.pop(), std::nullopt);
}

// Same property for the thread pool's worker loop: destruction signals stop,
// but tasks already queued still run before the workers exit.
TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futs.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
    }
  }  // ~ThreadPool joins the workers
  for (auto& f : futs) f.get();  // a dropped task would hang/throw here
  EXPECT_EQ(ran.load(), 64);
}

TEST(BlockingQueue, BoundedUnderSlowConsumer) {
  // A fast producer against a slow consumer must never grow the queue past
  // its capacity; overflow is shed at try_push instead of buffered.
  BlockingQueue<int> q(8);
  std::atomic<int> shed{0}, delivered{0};
  std::thread producer([&] {
    for (int i = 0; i < 2000; ++i) {
      if (q.try_push(int(i))) {
        ++delivered;
      } else {
        ++shed;
      }
      ASSERT_LE(q.size(), 8u);
    }
    q.close();
  });
  int consumed = 0;
  while (q.pop().has_value()) {
    ++consumed;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  producer.join();
  EXPECT_EQ(consumed, delivered.load());
  EXPECT_EQ(delivered.load() + shed.load(), 2000);
  EXPECT_GT(shed.load(), 0);  // the slow consumer forced shedding
}

// --- timers ------------------------------------------------------------------------

TEST(PhaseTimer, AccumulatesPerPhase) {
  PhaseTimer t;
  t.add(Phase::kSample, 1.5);
  t.add(Phase::kSample, 0.5);
  t.add(Phase::kTrain, 2.0);
  EXPECT_DOUBLE_EQ(t.total(Phase::kSample), 2.0);
  EXPECT_DOUBLE_EQ(t.total(Phase::kTrain), 2.0);
  EXPECT_DOUBLE_EQ(t.grand_total(), 4.0);
  EXPECT_NE(t.summary().find("sample=2"), std::string::npos);
  t.reset();
  EXPECT_DOUBLE_EQ(t.grand_total(), 0.0);
}

TEST(PhaseTimer, TimeChargesElapsed) {
  PhaseTimer t;
  const int v = t.time(Phase::kSlice, [] { return 42; });
  EXPECT_EQ(v, 42);
  EXPECT_GE(t.total(Phase::kSlice), 0.0);
}

TEST(WallTimer, MeasuresMonotonically) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(t.nanos(), 0);
}

// --- vectorized half converters vs the scalar reference ----------------------

TEST(Half, BulkHalfToFloatMatchesScalarForAllPatterns) {
  // Exhaustive: every 16-bit pattern (normals, subnormals, ±0, ±inf, every
  // NaN payload) decompressed by the bulk converter must be bit-identical to
  // the scalar reference. Offset by 1 so the vector body runs unaligned and
  // the loop exercises the remainder tail.
  std::vector<Half> src(0x10000 + 1);
  for (std::uint32_t b = 0; b < 0x10000; ++b) {
    src[b + 1] = Half::from_bits(static_cast<std::uint16_t>(b));
  }
  std::vector<float> bulk(src.size());
  half_to_float_n(src.data() + 1, bulk.data() + 1, src.size() - 1);
  for (std::uint32_t b = 0; b < 0x10000; ++b) {
    const float expect = half_to_float(src[b + 1]);
    std::uint32_t eb, gb;
    std::memcpy(&eb, &expect, 4);
    std::memcpy(&gb, &bulk[b + 1], 4);
    ASSERT_EQ(gb, eb) << "half bits=" << b;
  }
}

TEST(Half, BulkFloatToHalfMatchesScalarForAllHalfValuesAndBoundaries) {
  // Every exactly-representable half value, its round-to-nearest-even
  // boundary neighbours (±1 ulp of the float), and a deterministic sample
  // of arbitrary float bit patterns must compress identically via the bulk
  // converter and the scalar reference.
  std::vector<float> src;
  src.reserve(3 * 0x10000 + 100000);
  for (std::uint32_t b = 0; b < 0x10000; ++b) {
    const float f = half_to_float(Half::from_bits(static_cast<std::uint16_t>(b)));
    src.push_back(f);
    if (std::isfinite(f)) {
      src.push_back(std::nextafter(f, 1e38f));
      src.push_back(std::nextafter(f, -1e38f));
    }
  }
  Xoshiro256ss rng(0x5a1f);
  for (int i = 0; i < 100000; ++i) {
    const std::uint32_t bits = static_cast<std::uint32_t>(rng());
    float f;
    std::memcpy(&f, &bits, 4);
    src.push_back(f);
  }
  std::vector<Half> bulk(src.size());
  float_to_half_n(src.data(), bulk.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(bulk[i].bits, float_to_half(src[i]).bits)
        << "i=" << i << " f=" << src[i];
  }
}

// --- persistent-worker broadcast parallel_for --------------------------------

TEST(ThreadPool, WorkerJobsRunShowsBroadcastEngagement) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1 << 12);
  for (int rep = 0; rep < 8; ++rep) {
    pool.parallel_for(0, static_cast<std::int64_t>(hits.size()),
                      [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t i = b; i < e; ++i) {
                          hits[static_cast<std::size_t>(i)].fetch_add(1);
                        }
                      });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 8);
  std::uint64_t jobs = 0;
  for (std::size_t w = 0; w < pool.size(); ++w) jobs += pool.worker_jobs_run(w);
  // 8 broadcasts over 4 workers: the persistent-worker path must have run
  // chunks on the workers (not degraded to caller-only serial execution).
  EXPECT_GT(jobs, 0u);
}

TEST(ThreadPool, ConcurrentExternalCallersSerializeCorrectly) {
  // The cluster trainer pattern: several external threads share one kernel
  // pool, each issuing its own parallel_for. Jobs must serialize internally
  // and every caller must see exactly its own range covered once.
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  constexpr std::int64_t kN = 20000;
  std::vector<std::vector<int>> marks(kCallers, std::vector<int>(kN, 0));
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int rep = 0; rep < 5; ++rep) {
        pool.parallel_for(0, kN, [&, c](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i) marks[c][i] += 1;
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(marks[c][i], 5) << "caller " << c << " index " << i;
    }
  }
}

TEST(ThreadPool, NestedParallelForDegradesToSerial) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> outer(64);
  std::vector<std::atomic<int>> inner(64);
  pool.parallel_for(0, 64, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      outer[static_cast<std::size_t>(i)].fetch_add(1);
    }
    // Re-entrant call from inside a running job: must run serially on this
    // thread instead of deadlocking on the broadcast channel.
    pool.parallel_for(0, 64, [&](std::int64_t b2, std::int64_t e2) {
      for (std::int64_t j = b2; j < e2; ++j) {
        inner[static_cast<std::size_t>(j)].fetch_add(1);
      }
    });
  });
  int chunks = 0;
  for (const auto& o : outer) {
    EXPECT_EQ(o.load(), 1);
    chunks += o.load();
  }
  EXPECT_EQ(chunks, 64);
  // Each outer chunk ran the full inner range once.
  const int outer_chunk_count = static_cast<int>(std::min<std::int64_t>(
      64, static_cast<std::int64_t>(pool.size()) + 1));
  (void)outer_chunk_count;  // inner total = number of outer fn invocations
  int inner_total = inner[0].load();
  for (const auto& in : inner) EXPECT_EQ(in.load(), inner_total);
}

TEST(ThreadPool, ParallelForExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [](std::int64_t b, std::int64_t) {
                          if (b == 0) throw std::runtime_error("chunk boom");
                        }),
      std::runtime_error);
  // The pool must remain fully usable for both execution paths afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100,
                    [&](std::int64_t b, std::int64_t e) {
                      count.fetch_add(static_cast<int>(e - b));
                    });
  EXPECT_EQ(count.load(), 100);
  auto fut = pool.submit([&] { count.fetch_add(1); });
  fut.wait();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, SubmitAndBroadcastInterleave) {
  ThreadPool pool(4);
  std::atomic<int> task_runs{0};
  std::atomic<std::int64_t> covered{0};
  std::vector<std::future<void>> futs;
  for (int rep = 0; rep < 20; ++rep) {
    futs.push_back(pool.submit([&] { task_runs.fetch_add(1); }));
    pool.parallel_for(0, 1 << 10, [&](std::int64_t b, std::int64_t e) {
      covered.fetch_add(e - b);
    });
  }
  for (auto& f : futs) f.wait();
  EXPECT_EQ(task_runs.load(), 20);
  EXPECT_EQ(covered.load(), 20 * (1 << 10));
}

}  // namespace
}  // namespace salient
