// bench_gate — kernel-layer benchmark regression gate.
//
// Measures every kernel the optimized layer covers (GEMM, the SpMM family,
// row indexing, elementwise/reduction ops) under the reference kernels and
// under the optimized kernels at 1/4/8 pool threads, min-of-N timed (the
// same de-noising discipline as tests/test_device.cpp), on fixed MFG-like
// shapes.
//
// Modes:
//   bench_gate --emit BENCH_kernels.json [--smoke]
//       Write the measured baseline (committed at the repo root; refresh it
//       whenever kernels change intentionally — see docs/PERFORMANCE.md).
//   bench_gate --baseline BENCH_kernels.json [--smoke] [--tolerance F]
//       Re-measure and fail (exit 1) if any kernel's speedup-over-reference
//       fell below `baseline_speedup * F`, or if an optimized kernel became
//       >2x slower than its reference. Speedup *ratios* (not absolute times)
//       are compared so the gate tolerates machine differences; the ctest
//       registration uses --smoke (fewer repetitions, looser tolerance) and
//       only catches order-of-magnitude regressions.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_lite.h"
#include "tensor/kernel_config.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace salient;
namespace json = salient::obs::json;

struct Entry {
  std::string name;
  std::function<void()> run;  ///< executes the kernel under the current kind/pool
};

struct Measurement {
  std::string name;
  double ref_ms = 0, opt1_ms = 0, opt4_ms = 0, opt8_ms = 0;
  double speedup1() const { return ref_ms / opt1_ms; }
  double speedup4() const { return ref_ms / opt4_ms; }
  double speedup8() const { return ref_ms / opt8_ms; }
};

double time_min_ms(const std::function<void()>& fn, int reps) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

/// Synthetic destination-major CSR with MFG-like degree statistics.
struct Csr {
  std::vector<std::int64_t> indptr;
  std::vector<std::int64_t> indices;
  std::vector<double> weights;
};

Csr make_csr(std::int64_t num_dst, std::int64_t num_src, std::int64_t fanout,
             std::uint64_t seed) {
  Csr c;
  Xoshiro256ss rng(seed);
  c.indptr.push_back(0);
  for (std::int64_t d = 0; d < num_dst; ++d) {
    // sampled-fanout style: most rows at the fanout cap, some below.
    const std::int64_t deg =
        1 + static_cast<std::int64_t>(
                bounded_rand(rng, static_cast<std::uint64_t>(fanout)));
    for (std::int64_t k = 0; k < deg; ++k) {
      c.indices.push_back(static_cast<std::int64_t>(
          bounded_rand(rng, static_cast<std::uint64_t>(num_src))));
      c.weights.push_back(
          0.05 + static_cast<double>(bounded_rand(rng, 64)) / 64.0);
    }
    c.indptr.push_back(static_cast<std::int64_t>(c.indices.size()));
  }
  return c;
}

// Keep kernel outputs observable so the work is not optimized away.
volatile double g_sink = 0;
void sink(const Tensor& t) {
  g_sink = g_sink + static_cast<const char*>(t.raw())[0];
}

std::vector<Entry> build_entries() {
  std::vector<Entry> es;
  // GEMM at the issue's headline shape plus a larger one; f64 at a smaller
  // shape (gradcheck precision path, less hot).
  struct GemmShape { std::int64_t m, k, n; };
  static const Tensor ga = Tensor::uniform({512, 128}, 1, -1, 1);
  static const Tensor gb = Tensor::uniform({128, 256}, 2, -1, 1);
  es.push_back({"gemm_f32_512x128x256",
                [] { sink(ops::matmul(ga, gb)); }});
  static const Tensor ga2 = Tensor::uniform({1024, 256}, 3, -1, 1);
  static const Tensor gb2 = Tensor::uniform({256, 512}, 4, -1, 1);
  es.push_back({"gemm_f32_1024x256x512",
                [] { sink(ops::matmul(ga2, gb2)); }});
  static const Tensor ga3 =
      Tensor::uniform({256, 128}, 5, -1, 1, DType::kF64);
  static const Tensor gb3 =
      Tensor::uniform({128, 128}, 6, -1, 1, DType::kF64);
  es.push_back({"gemm_f64_256x128x128",
                [] { sink(ops::matmul(ga3, gb3)); }});

  // SpMM family on an ogbn-like MFG level: ~8k destination rows with
  // fanout-15 sampled in-degrees over ~24k sources, 128 features.
  static const Csr csr = make_csr(8192, 24576, 15, 7);
  static const Tensor sx = Tensor::uniform({24576, 128}, 8, -1, 1);
  static const Tensor sg = Tensor::uniform({8192, 128}, 9, -1, 1);
  es.push_back({"spmm_mean_fwd_8kx24k_f128", [] {
                  sink(ops::spmm_mean(csr.indptr, csr.indices, sx, 8192));
                }});
  es.push_back({"spmm_sum_fwd_8kx24k_f128", [] {
                  sink(ops::spmm_sum(csr.indptr, csr.indices, sx, 8192));
                }});
  es.push_back({"spmm_weighted_fwd_8kx24k_f128", [] {
                  sink(ops::spmm_weighted(csr.indptr, csr.indices,
                                          csr.weights, sx, 8192));
                }});
  es.push_back({"spmm_max_fwd_8kx24k_f128", [] {
                  sink(ops::spmm_max(csr.indptr, csr.indices, sx, 8192,
                                     nullptr));
                }});
  es.push_back({"spmm_mean_bwd_8kx24k_f128", [] {
                  sink(ops::spmm_mean_backward(csr.indptr, csr.indices, sg,
                                               24576));
                }});
  es.push_back({"spmm_sum_bwd_8kx24k_f128", [] {
                  sink(ops::spmm_sum_backward(csr.indptr, csr.indices, sg,
                                              24576));
                }});
  es.push_back({"spmm_weighted_bwd_8kx24k_f128", [] {
                  sink(ops::spmm_weighted_backward(csr.indptr, csr.indices,
                                                   csr.weights, sg, 24576));
                }});

  // Fused-epilogue Linear forward vs the unfused three-pass sequence at a
  // hidden-layer shape. check() additionally enforces the fusion win
  // directly: unfused opt1_ms / fused opt1_ms must stay >= 1.3 (the
  // bytes-moved analysis in docs/PERFORMANCE.md predicts ~2x).
  static const Tensor lx = Tensor::uniform({4096, 64}, 16, -1, 1);
  static const Tensor lw = Tensor::uniform({256, 64}, 17, -1, 1);
  static const Tensor lbias = Tensor::uniform({256}, 18, -1, 1);
  es.push_back({"linear_unfused3_4096x64x256", [] {
                  Tensor h = ops::matmul(lx, lw, false, true);
                  Tensor hb = ops::add_row_broadcast(h, lbias);
                  sink(ops::relu(hb));
                }});
  es.push_back({"linear_fused_epi_4096x64x256", [] {
                  sink(ops::gemm_epilogue(lx, lw, lbias,
                                          ops::Epilogue::kBiasRelu, 0.0, 0,
                                          nullptr));
                }});

  // Compressed-feature GEMM: an f16 activation matrix against f32 weights.
  // The optimized kernel decompresses rows inside its packing stage; the
  // reference materializes the f32 matrix first, so the speedup ratio
  // tracks the dequantize-in-pack win.
  static const Tensor lx16 = lx.to(DType::kF16);
  es.push_back({"gemm_f16a_4096x64x256",
                [] { sink(ops::matmul(lx16, lw, false, true)); }});

  // Row indexing at batch-preparation scale.
  static const Tensor gi = [] {
    Xoshiro256ss rng(10);
    std::vector<std::int64_t> ids(20000);
    for (auto& v : ids) {
      v = static_cast<std::int64_t>(bounded_rand(rng, 24576));
    }
    return Tensor::from_vector<std::int64_t>(
        ids, {static_cast<std::int64_t>(ids.size())});
  }();
  es.push_back({"gather_rows_20kx128", [] { sink(ops::gather_rows(sx, gi)); }});
  static const Tensor scat_src = Tensor::uniform({20000, 128}, 11, -1, 1);
  es.push_back({"scatter_add_rows_20kx128", [] {
                  Tensor dst = Tensor::zeros({24576, 128}, DType::kF32);
                  ops::scatter_add_rows_(dst, gi, scat_src);
                  sink(dst);
                }});

  // Elementwise / reduction ops at hidden-activation scale.
  static const Tensor ea = Tensor::uniform({8192, 256}, 12, -1, 1);
  static const Tensor eb = Tensor::uniform({8192, 256}, 13, -1, 1);
  static const Tensor ebias = Tensor::uniform({256}, 14, -1, 1);
  es.push_back({"add_8kx256", [] { sink(ops::add(ea, eb)); }});
  es.push_back({"relu_8kx256", [] { sink(ops::relu(ea)); }});
  es.push_back({"axpy_8kx256", [] {
                  Tensor acc = ea.clone();
                  ops::axpy_(acc, eb, 0.9);
                  sink(acc);
                }});
  es.push_back({"add_row_broadcast_8kx256",
                [] { sink(ops::add_row_broadcast(ea, ebias)); }});
  es.push_back({"sum_rows_8kx256", [] { sink(ops::sum_rows(ea)); }});
  static const Tensor logits = Tensor::uniform({8192, 48}, 15, -4, 4);
  es.push_back({"log_softmax_rows_8kx48",
                [] { sink(ops::log_softmax_rows(logits)); }});
  es.push_back({"argmax_rows_8kx48", [] { sink(ops::argmax_rows(logits)); }});
  return es;
}

std::vector<Measurement> measure(int reps) {
  ThreadPool p1(1), p4(4), p8(8);
  std::vector<Measurement> out;
  for (const Entry& e : build_entries()) {
    Measurement m;
    m.name = e.name;
    ops::set_kernel_kind(ops::KernelKind::kRef);
    ops::set_kernel_pool(&p1);
    m.ref_ms = time_min_ms(e.run, reps);
    ops::set_kernel_kind(ops::KernelKind::kOpt);
    m.opt1_ms = time_min_ms(e.run, reps);
    ops::set_kernel_pool(&p4);
    m.opt4_ms = time_min_ms(e.run, reps);
    ops::set_kernel_pool(&p8);
    m.opt8_ms = time_min_ms(e.run, reps);
    out.push_back(m);
    std::cerr << "  " << m.name << ": ref " << m.ref_ms << " ms, opt "
              << m.opt1_ms << " / " << m.opt4_ms << " / " << m.opt8_ms
              << " ms (1/4/8 thr) — speedup x" << m.speedup1() << " / x"
              << m.speedup4() << " / x" << m.speedup8() << "\n";
  }
  ops::set_kernel_pool(nullptr);
  ops::set_kernel_kind(ops::KernelKind::kOpt);
  return out;
}

int emit(const std::vector<Measurement>& ms, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "bench_gate: cannot write " << path << "\n";
    return 1;
  }
  os << "{\n  \"schema\": \"salient-bench-kernels-v1\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const Measurement& m = ms[i];
    os << "    {\"name\": \"" << m.name << "\", \"ref_ms\": " << m.ref_ms
       << ", \"opt1_ms\": " << m.opt1_ms << ", \"opt4_ms\": " << m.opt4_ms
       << ", \"opt8_ms\": " << m.opt8_ms
       << ", \"speedup1\": " << m.speedup1()
       << ", \"speedup4\": " << m.speedup4()
       << ", \"speedup8\": " << m.speedup8() << "}"
       << (i + 1 < ms.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cerr << "bench_gate: wrote " << path << " (" << ms.size()
            << " entries)\n";
  return 0;
}

int check_gate(const std::vector<Measurement>& ms,
               const std::string& path, double tolerance) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "bench_gate: cannot open baseline " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  json::Value doc;
  std::string error;
  if (!json::parse(buf.str(), doc, error) || !doc.is_object()) {
    std::cerr << "bench_gate: baseline is not valid JSON: " << error << "\n";
    return 1;
  }
  const json::Value* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    std::cerr << "bench_gate: baseline lacks \"entries\" array\n";
    return 1;
  }
  int failures = 0;
  for (const Measurement& m : ms) {
    const json::Value* base = nullptr;
    for (const json::Value& e : entries->array) {
      const json::Value* n = e.is_object() ? e.find("name") : nullptr;
      if (n != nullptr && n->is_string() && n->string == m.name) {
        base = &e;
        break;
      }
    }
    if (base == nullptr) {
      std::cerr << "bench_gate: FAIL " << m.name
                << ": missing from baseline (refresh BENCH_kernels.json)\n";
      ++failures;
      continue;
    }
    struct Axis { const char* key; double measured; };
    const Axis axes[] = {{"speedup1", m.speedup1()},
                         {"speedup8", m.speedup8()}};
    for (const Axis& ax : axes) {
      const json::Value* b = base->find(ax.key);
      if (b == nullptr || !b->is_number()) continue;
      const double floor = b->number * tolerance;
      if (ax.measured < floor) {
        std::cerr << "bench_gate: FAIL " << m.name << " " << ax.key << " x"
                  << ax.measured << " < baseline x" << b->number
                  << " * tolerance " << tolerance << "\n";
        ++failures;
      }
    }
    // Absolute backstop, machine-independent: the optimized kernel must
    // never be more than 2x slower than the reference.
    if (m.speedup1() < 0.5) {
      std::cerr << "bench_gate: FAIL " << m.name
                << ": optimized kernel is >2x slower than reference (x"
                << m.speedup1() << ")\n";
      ++failures;
    }
  }
  // Explicit fusion gate (machine-independent, a ratio of two timings taken
  // on this machine): the fused bias+ReLU epilogue must beat the unfused
  // three-pass {matmul, add_row_broadcast, relu} sequence by >= 1.3x on
  // single-thread optimized timings.
  const Measurement* fused = nullptr;
  const Measurement* unfused = nullptr;
  for (const Measurement& m : ms) {
    if (m.name == "linear_fused_epi_4096x64x256") fused = &m;
    if (m.name == "linear_unfused3_4096x64x256") unfused = &m;
  }
  if (fused != nullptr && unfused != nullptr) {
    const double ratio = unfused->opt1_ms / fused->opt1_ms;
    constexpr double kFusionFloor = 1.3;
    if (ratio < kFusionFloor) {
      std::cerr << "bench_gate: FAIL fused epilogue win x" << ratio
                << " < required x" << kFusionFloor
                << " (unfused " << unfused->opt1_ms << " ms vs fused "
                << fused->opt1_ms << " ms)\n";
      ++failures;
    } else {
      std::cerr << "bench_gate: fused epilogue win x" << ratio << " (>= x"
                << kFusionFloor << ")\n";
    }
  }
  if (failures != 0) {
    std::cerr << "bench_gate: " << failures << " regression(s)\n";
    return 1;
  }
  std::cout << "bench_gate: OK — " << ms.size()
            << " kernels within tolerance " << tolerance << " of baseline\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string emit_path, baseline_path;
  bool smoke = false;
  double tolerance = 0.35;
  bool tolerance_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit") == 0 && i + 1 < argc) {
      emit_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
      tolerance_set = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "usage: bench_gate (--emit out.json | --baseline in.json)"
                   " [--smoke] [--tolerance F]\n";
      return 1;
    }
  }
  if (emit_path.empty() == baseline_path.empty()) {
    std::cerr << "bench_gate: exactly one of --emit / --baseline required\n";
    return 1;
  }
  // Smoke mode trades repetitions for runtime and loosens the tolerance so
  // CI only trips on order-of-magnitude regressions.
  const int reps = smoke ? 3 : 7;
  if (smoke && !tolerance_set) tolerance = 0.25;
  std::cerr << "bench_gate: measuring (" << (smoke ? "smoke" : "full")
            << ", min of " << reps << ")\n";
  const std::vector<Measurement> ms = measure(reps);
  return emit_path.empty() ? check_gate(ms, baseline_path, tolerance)
                           : emit(ms, emit_path);
}
