// Cluster-communication benchmark (docs/DISTRIBUTED.md, EXPERIMENTS.md).
//
// Sweeps the simulated training cluster (src/dist/cluster/) over node counts
// x remote-cache capacities x placement policies x pipeline depths on a
// degree-skewed synthetic graph, and reports per configuration the modelled
// network time, the simulated epoch time, the remote feature bytes crossing
// the interconnect, and the replication-cache hit rate. This is the
// experiment behind the SALIENT++ claims the subsystem reproduces:
// cross-node feature traffic falls as the replication cache grows,
// frequency-informed placement (presample, degree) outperforms recency
// (LRU), and pipelining the remaining fetches behind training compute
// (overlap on, depth >= 1) cuts simulated epoch time below the
// bulk-synchronous protocol (overlap off, depth 0) without perturbing a
// single loss bit.
//
//   ./dist_bench [flags]
//     --preset=skewed|uniform  degree skew of the synthetic graph  [skewed]
//     --graph-nodes=<n>        synthetic vertex count              [4000]
//     --nodes=a,b,...          cluster node counts                 [2,4]
//     --cache-pct=p1,p2,...    per-node cache fractions of |V|
//                                                          [0,0.02,0.05,0.1]
//     --policies=a,b,...       lru|degree|presample  [degree,presample,lru]
//     --depths=a,b,...         pipeline depths; 0 = bulk-synchronous [0,2]
//     --epochs=<n>             training epochs per configuration   [1]
//     --emit=<path>            write machine-readable BENCH_dist.json
//     --check                  exit nonzero unless the gate holds (see below)
//     --smoke                  small sweep for ctest: 2000-vertex graph,
//                              2-node cluster, fractions 0,0.05
//
// The --check gate enforces, per (node count, policy, depth) curve over
// ascending capacities: (a) static placements (degree, presample) move
// monotonically non-increasing remote feature bytes as the cache grows;
// (b) at every nonzero swept capacity the frequency-informed placements
// match-or-beat LRU's remote hit rate; (c) a zero-capacity cache serves no
// hits; and losses are identical across policies and capacities at a fixed
// node count — replication is a pure communication optimization and must
// never change the training trajectory. Across depths at every (nodes,
// policy, capacity) point it additionally enforces (d) the overlap gate:
// identical losses and remote bytes bit for bit, pipelined simulated epoch
// time <= bulk-synchronous, and strictly below it whenever there is remote
// traffic to hide.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/config.h"
#include "dist/cluster/cluster_trainer.h"
#include "graph/dataset.h"
#include "prep/cache_policy.h"

namespace {

using namespace salient;

struct DistBenchOptions {
  std::string preset = "skewed";
  std::int64_t graph_nodes = 4000;
  std::vector<std::int64_t> nodes{2, 4};
  std::vector<double> cache_pcts{0.0, 0.02, 0.05, 0.1};
  std::vector<std::string> policies{"degree", "presample", "lru"};
  std::vector<std::int64_t> depths{0, 2};  // overlap off, overlap on
  int epochs = 1;
  std::string emit_path;
  bool check = false;
  bool smoke = false;
};

struct DistResult {
  int nodes = 0;
  std::string policy;
  double cache_pct = 0;
  int pipeline_depth = 0;
  std::int64_t capacity_rows = 0;
  double mean_loss = 0;
  double wall_seconds = 0;
  double sim_net_seconds = 0;
  double sim_epoch_seconds = 0;
  double overlap_saved_seconds = 0;
  std::int64_t remote_rows_fetched = 0;
  std::size_t remote_feature_bytes = 0;
  std::size_t wire_bytes = 0;
  std::int64_t net_messages = 0;
  double remote_hit_rate = 0;
};

std::vector<std::string> parse_names(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool consume(const std::string& arg, const std::string& key,
             std::string& value) {
  const std::string prefix = "--" + key + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  value = arg.substr(prefix.size());
  return true;
}

DistBenchOptions parse_options(int argc, char** argv) {
  DistBenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (consume(arg, "preset", v)) o.preset = v;
    else if (consume(arg, "graph-nodes", v)) o.graph_nodes = std::atoll(v.c_str());
    else if (consume(arg, "nodes", v)) o.nodes = parse_int_list(v);
    else if (consume(arg, "cache-pct", v)) o.cache_pcts = parse_double_list(v);
    else if (consume(arg, "policies", v)) o.policies = parse_names(v);
    else if (consume(arg, "depths", v)) o.depths = parse_nonneg_int_list(v);
    else if (consume(arg, "epochs", v)) o.epochs = std::atoi(v.c_str());
    else if (consume(arg, "emit", v)) o.emit_path = v;
    else if (arg == "--check") o.check = true;
    else if (arg == "--smoke") o.smoke = true;
    else {
      std::cerr << "dist_bench: unknown flag " << arg << "\n";
      std::exit(2);
    }
  }
  if (o.smoke) {
    o.graph_nodes = 2000;
    o.nodes = {2};
    o.cache_pcts = {0.0, 0.05};
  }
  // Ascending capacities so the monotone-traffic check reads each curve in
  // sweep order; ascending depths so depth 0 (the bulk-synchronous overlap
  // baseline) is the first row of every on/off pair.
  std::sort(o.cache_pcts.begin(), o.cache_pcts.end());
  std::sort(o.depths.begin(), o.depths.end());
  if (o.epochs < 1) {
    std::cerr << "dist_bench: --epochs must be >= 1\n";
    std::exit(2);
  }
  return o;
}

Dataset make_bench_dataset(const DistBenchOptions& o) {
  DatasetConfig c;
  c.name = "dist-bench-" + o.preset;
  c.num_nodes = o.graph_nodes;
  c.feature_dim = 16;
  c.num_classes = 5;
  c.avg_degree = 9;
  // The skewed preset concentrates degree mass on few vertices so that hot
  // remote features exist for the replication cache to capture; the uniform
  // preset flattens the degree distribution as a caching-hostile control.
  c.powerlaw_exponent = o.preset == "uniform" ? 3.5 : 1.9;
  c.p_in = 0.85;
  c.feature_signal = 0.4;
  c.feature_noise = 0.8;
  c.seed = 77;
  return generate_dataset(c);
}

dist::ClusterConfig make_cluster_config(const Dataset& ds, int nodes,
                                        const std::string& policy,
                                        double cache_pct, int depth) {
  dist::ClusterConfig cc;
  cc.partition.num_nodes = nodes;
  cc.partition.strategy = dist::PartitionStrategy::kGreedy;
  cc.partition.seed = 5;
  cc.cache.policy = parse_cache_policy(policy);
  cc.cache.cache_percentage = cache_pct;
  cc.cache.presample_epochs = 1;
  cc.pipeline_depth = depth;
  cc.model.in_channels = ds.feature_dim;
  cc.model.hidden_channels = 32;
  cc.model.out_channels = ds.num_classes;
  cc.model.num_layers = 2;
  cc.model.seed = 9;
  cc.fanouts = {6, 4};
  cc.batch_size = 256;
  cc.seed = 21;
  cc.lr = 5e-3;
  return cc;
}

DistResult run_config(const Dataset& ds, int nodes, const std::string& policy,
                      double cache_pct, int depth, int epochs) {
  dist::ClusterTrainer trainer(
      ds, make_cluster_config(ds, nodes, policy, cache_pct, depth));
  DistResult r;
  r.nodes = nodes;
  r.policy = policy;
  r.cache_pct = cache_pct;
  r.pipeline_depth = depth;
  r.capacity_rows = nodes > 0 ? trainer.remote_cache(0).capacity() : 0;
  for (int e = 0; e < epochs; ++e) {
    // The last epoch is the steady-state one reported: static placements are
    // capacity-identical every epoch, while LRU gets its warmed best case.
    const dist::ClusterEpochResult epoch = trainer.train_epoch(e);
    r.mean_loss = epoch.mean_loss;
    r.wall_seconds = epoch.wall_seconds;
    r.sim_net_seconds = epoch.sim_net_seconds;
    r.sim_epoch_seconds = epoch.sim_epoch_seconds;
    r.overlap_saved_seconds = epoch.overlap_saved_seconds;
    r.remote_rows_fetched = epoch.remote_rows_fetched;
    r.remote_feature_bytes = epoch.remote_feature_bytes;
    r.wire_bytes = epoch.wire_bytes;
    r.net_messages = epoch.net_messages;
    r.remote_hit_rate = epoch.remote_hit_rate();
  }
  return r;
}

void print_result(const DistResult& r) {
  std::cout << "  nodes " << r.nodes << "  policy " << std::setw(9)
            << std::left << r.policy << std::right << "  cache "
            << std::fixed << std::setprecision(2) << r.cache_pct * 100
            << "% (" << r.capacity_rows << " rows)"
            << "  overlap " << (r.pipeline_depth > 0 ? "on " : "off")
            << " (d=" << r.pipeline_depth << ")"
            << "  remote " << r.remote_feature_bytes << " B"
            << "  hit " << std::setprecision(3) << r.remote_hit_rate
            << "  epoch " << std::setprecision(4) << r.sim_epoch_seconds
            << " s"
            << "  loss " << std::setprecision(6) << r.mean_loss << "\n";
  std::cout.unsetf(std::ios::fixed);
}

int emit(const std::vector<DistResult>& rs, const DistBenchOptions& o) {
  std::ofstream os(o.emit_path);
  if (!os) {
    std::cerr << "dist_bench: cannot write " << o.emit_path << "\n";
    return 1;
  }
  os << "{\n";
  os << "  \"schema\": \"salient-bench-dist-v2\",\n";
  os << "  \"preset\": \"" << o.preset << "\",\n";
  os << "  \"graph_nodes\": " << o.graph_nodes << ",\n";
  os << "  \"epochs\": " << o.epochs << ",\n";
  os << "  \"entries\": [\n";
  os << std::setprecision(6);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const DistResult& r = rs[i];
    os << "    {\"nodes\": " << r.nodes << ", \"policy\": \"" << r.policy
       << "\", \"cache_pct\": " << r.cache_pct
       << ", \"pipeline_depth\": " << r.pipeline_depth
       << ", \"capacity_rows\": " << r.capacity_rows
       << ", \"mean_loss\": " << r.mean_loss
       << ", \"sim_net_seconds\": " << r.sim_net_seconds
       << ", \"sim_epoch_seconds\": " << r.sim_epoch_seconds
       << ", \"overlap_saved_seconds\": " << r.overlap_saved_seconds
       << ", \"remote_rows_fetched\": " << r.remote_rows_fetched
       << ", \"remote_feature_bytes\": " << r.remote_feature_bytes
       << ", \"wire_bytes\": " << r.wire_bytes
       << ", \"net_messages\": " << r.net_messages
       << ", \"remote_hit_rate\": " << r.remote_hit_rate << "}"
       << (i + 1 < rs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "dist_bench: wrote " << o.emit_path << " (" << rs.size()
            << " entries)\n";
  return 0;
}

int check_gate(const std::vector<DistResult>& rs) {
  int failures = 0;
  const auto fail = [&failures](const std::string& what) {
    std::cerr << "dist_bench: CHECK FAILED — " << what << "\n";
    ++failures;
  };

  // Index results by (nodes, policy, depth) curve in sweep (ascending-pct)
  // order — the capacity checks hold within every step protocol.
  std::map<std::tuple<int, std::string, int>, std::vector<DistResult>> curves;
  for (const DistResult& r : rs) {
    curves[{r.nodes, r.policy, r.pipeline_depth}].push_back(r);
  }

  for (const auto& [key, curve] : curves) {
    const auto& [nodes, policy, depth] = key;
    if (nodes <= 1) continue;  // no remote traffic to optimize
    std::ostringstream tag;
    tag << nodes << "-node " << policy << " depth " << depth;
    for (std::size_t i = 0; i < curve.size(); ++i) {
      const DistResult& r = curve[i];
      if (r.cache_pct == 0.0 && r.remote_hit_rate != 0.0) {
        fail(tag.str() + ": zero-capacity cache reported hits");
      }
      // (a) static placements: remote bytes never grow with capacity.
      if (policy != "lru" && i > 0 &&
          r.remote_feature_bytes > curve[i - 1].remote_feature_bytes) {
        std::ostringstream msg;
        msg << tag.str() << ": remote bytes rose " << std::setprecision(3)
            << curve[i - 1].remote_feature_bytes << " -> "
            << r.remote_feature_bytes << " as cache grew to "
            << r.cache_pct * 100 << "%";
        fail(msg.str());
      }
      // Replication must not change what is trained, only what is moved.
      if (r.mean_loss != curve[0].mean_loss) {
        fail(tag.str() + ": mean loss changed across cache capacities");
      }
    }
  }

  // (b) frequency-informed placement matches-or-beats LRU at every nonzero
  // swept capacity (the SALIENT++ comparison; docs/CACHING.md).
  for (const auto& [key, curve] : curves) {
    const auto& [nodes, policy, depth] = key;
    if (nodes <= 1 || policy == "lru") continue;
    const auto lru = curves.find({nodes, std::string("lru"), depth});
    if (lru == curves.end()) continue;
    for (const DistResult& r : curve) {
      if (r.cache_pct == 0.0) continue;
      for (const DistResult& l : lru->second) {
        if (l.cache_pct != r.cache_pct) continue;
        if (r.remote_hit_rate < l.remote_hit_rate) {
          std::ostringstream msg;
          msg << nodes << "-node " << policy << " hit rate "
              << std::setprecision(3) << r.remote_hit_rate
              << " below lru " << l.remote_hit_rate << " at cache "
              << r.cache_pct * 100 << "%";
          fail(msg.str());
        }
      }
    }
  }

  // (d) the overlap gate: at every (nodes, policy, capacity) point a
  // pipelined run reproduces the bulk-synchronous losses and remote bytes
  // bit for bit, and its simulated epoch is never slower — strictly faster
  // whenever there is remote traffic to hide behind compute.
  std::map<std::tuple<int, std::string, double>, const DistResult*> bulk;
  for (const DistResult& r : rs) {
    if (r.pipeline_depth == 0) bulk[{r.nodes, r.policy, r.cache_pct}] = &r;
  }
  for (const DistResult& r : rs) {
    if (r.pipeline_depth == 0) continue;
    const auto it = bulk.find({r.nodes, r.policy, r.cache_pct});
    if (it == bulk.end()) continue;  // no depth-0 row swept to compare to
    const DistResult& b = *it->second;
    std::ostringstream tag;
    tag << r.nodes << "-node " << r.policy << " cache " << r.cache_pct * 100
        << "% depth " << r.pipeline_depth;
    if (r.mean_loss != b.mean_loss) {
      fail(tag.str() + ": pipelined loss diverged from bulk-synchronous");
    }
    if (r.remote_feature_bytes != b.remote_feature_bytes) {
      fail(tag.str() + ": pipelined remote bytes diverged from bulk");
    }
    if (r.sim_epoch_seconds > b.sim_epoch_seconds) {
      std::ostringstream msg;
      msg << tag.str() << ": pipelined sim epoch "
          << std::setprecision(4) << r.sim_epoch_seconds
          << " s exceeds bulk " << b.sim_epoch_seconds << " s";
      fail(msg.str());
    }
    if (r.nodes > 1 && r.remote_feature_bytes > 0 &&
        r.sim_epoch_seconds >= b.sim_epoch_seconds) {
      std::ostringstream msg;
      msg << tag.str() << ": overlap hid nothing (pipelined "
          << std::setprecision(4) << r.sim_epoch_seconds << " s, bulk "
          << b.sim_epoch_seconds << " s)";
      fail(msg.str());
    }
  }

  if (failures > 0) {
    std::cerr << "dist_bench: " << failures << " check(s) failed\n";
    return 1;
  }
  std::cout << "dist_bench: OK — remote traffic monotone under growing "
               "replication; frequency-informed placement >= lru at every "
               "swept capacity; pipelined epochs <= bulk-synchronous with "
               "bitwise-equal losses at every point\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const DistBenchOptions o = parse_options(argc, argv);
  const Dataset ds = make_bench_dataset(o);
  std::cout << "dist_bench: " << o.preset << " graph, |V|=" << ds.graph.num_nodes()
            << ", sweep " << o.nodes.size() << " node-counts x "
            << o.policies.size() << " policies x " << o.cache_pcts.size()
            << " capacities x " << o.depths.size() << " depths, "
            << o.epochs << " epoch(s) each\n";

  std::vector<DistResult> results;
  for (const std::int64_t n : o.nodes) {
    for (const std::string& policy : o.policies) {
      for (const double pct : o.cache_pcts) {
        // Depths innermost: each config's overlap off/on rows print as an
        // adjacent pair.
        for (const std::int64_t depth : o.depths) {
          results.push_back(run_config(ds, static_cast<int>(n), policy, pct,
                                       static_cast<int>(depth), o.epochs));
          print_result(results.back());
        }
      }
    }
  }

  int rc = 0;
  if (!o.emit_path.empty()) rc |= emit(results, o);
  if (o.check) rc |= check_gate(results);
  return rc;
}
