// Markdown cross-reference checker behind the `docs_link_check` ctest gate.
//
// The docs tree leans hard on relative links (README -> docs/*, docs/* ->
// each other, docs -> EXPERIMENTS.md); a renamed or dropped file silently
// strands every reference to it. This tool makes that a build failure:
//
//   doc_linkcheck --root <repo-root> <markdown files, root-relative...>
//                 [--require <file.md=target.md>]...
//
// For every inline markdown link `[text](target)` outside fenced code
// blocks it checks that a relative `target` resolves to an existing file
// under the root (external schemes and pure-anchor links are skipped;
// `#anchor` suffixes are stripped before resolution). Each `--require
// A=B` additionally asserts that file A contains at least one link
// resolving to file B — the mandatory cross-references (e.g. README must
// link docs/CACHING.md) stay mandatory.
//
// Pure standard library, like salient_lint: it must build and run even
// when the salient libraries do not.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Link {
  std::string target;  // raw target text from the markdown
  int line = 0;
};

bool is_external(const std::string& target) {
  return target.find("://") != std::string::npos ||
         target.rfind("mailto:", 0) == 0;
}

// Strip the anchor (and any ` "title"` suffix) from a link target.
std::string target_path(const std::string& target) {
  std::string t = target.substr(0, target.find('#'));
  const auto space = t.find(' ');
  if (space != std::string::npos) t = t.substr(0, space);
  return t;
}

// Inline links on one line: every `[text](target)` occurrence. Reference
// -style links are not used in this repo's docs.
void scan_line(const std::string& line, int line_no, std::vector<Link>& out) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '[') continue;
    const auto close = line.find(']', i + 1);
    if (close == std::string::npos) break;
    if (close + 1 >= line.size() || line[close + 1] != '(') continue;
    const auto end = line.find(')', close + 2);
    if (end == std::string::npos) continue;
    out.push_back({line.substr(close + 2, end - close - 2), line_no});
    i = end;
  }
}

std::vector<Link> scan_file(const fs::path& path, bool& ok) {
  std::ifstream in(path);
  std::vector<Link> links;
  if (!in) {
    std::cerr << "doc_linkcheck: cannot open " << path.string() << "\n";
    ok = false;
    return links;
  }
  std::string line;
  int line_no = 0;
  bool in_fence = false;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line.compare(first, 3, "```") == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (!in_fence) scan_line(line, line_no, links);
  }
  return links;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> files;
  std::vector<std::pair<std::string, std::string>> required;  // file -> target
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--require" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const auto eq = spec.find('=');
      if (eq == std::string::npos) {
        std::cerr << "doc_linkcheck: --require expects FILE=TARGET, got '"
                  << spec << "'\n";
        return 2;
      }
      required.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "doc_linkcheck: unknown flag " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: doc_linkcheck --root DIR FILE.md... "
                 "[--require FILE.md=TARGET.md]...\n";
    return 2;
  }

  bool ok = true;
  int checked = 0;
  // file (as given) -> set of link targets resolved to root-relative form.
  std::vector<std::pair<std::string, std::set<std::string>>> resolved;
  for (const auto& file : files) {
    const fs::path path = root / file;
    auto& targets =
        resolved.emplace_back(file, std::set<std::string>{}).second;
    for (const auto& link : scan_file(path, ok)) {
      const std::string rel = target_path(link.target);
      if (is_external(link.target) || rel.empty()) continue;
      ++checked;
      const fs::path dest = rel[0] == '/'
                                ? root / rel.substr(1)
                                : path.parent_path() / rel;
      if (!fs::exists(dest)) {
        std::cerr << file << ":" << link.line << ": broken link '"
                  << link.target << "' (resolved to "
                  << dest.lexically_normal().string() << ")\n";
        ok = false;
        continue;
      }
      targets.insert(
          fs::relative(fs::weakly_canonical(dest), fs::weakly_canonical(root))
              .generic_string());
    }
  }

  for (const auto& [file, want] : required) {
    bool found = false;
    bool scanned = false;
    for (const auto& [name, targets] : resolved) {
      if (name != file) continue;
      scanned = true;
      found = targets.count(want) != 0;
    }
    if (!scanned) {
      std::cerr << "doc_linkcheck: --require names " << file
                << ", which is not in the checked file list\n";
      ok = false;
    } else if (!found) {
      std::cerr << file << ": missing required cross-reference to " << want
                << "\n";
      ok = false;
    }
  }

  if (ok) {
    std::cout << "doc_linkcheck: " << files.size() << " files, " << checked
              << " relative links, " << required.size()
              << " required cross-references — all good\n";
  }
  return ok ? 0 : 1;
}
