// salient_lint: token-level concurrency/determinism linter for src/.
//
// The clang thread-safety analysis (see docs/STATIC_ANALYSIS.md) proves
// locking contracts, but only for code that uses the annotated primitives in
// util/thread_annotations.h — a naked std::mutex is invisible to it. This
// linter closes that hole, plus a few repo-specific discipline rules that
// need no semantic analysis, so they run everywhere (any compiler, any
// platform, < 100 ms) as the ctest `salient_lint_check`:
//
//   naked-mutex      std::mutex / std::lock_guard / std::unique_lock /
//                    std::condition_variable & friends outside src/util —
//                    use salient::Mutex/LockGuard/UniqueLock/CondVar so the
//                    capability analysis can see the lock.
//   nondeterminism   rand() / srand() / std::random_device / time(nullptr)
//                    seeds — the repro pipeline must be deterministic
//                    (paper §5.3 exact-result requirement); use
//                    salient::Xoshiro256ss with an explicit seed.
//   stdout-logging   std::cout / std::cerr / printf / fprintf / puts in
//                    library code — report through obs/ metrics or return
//                    errors; stdout belongs to tools and examples.
//   sleep            sleep_for / sleep_until outside src/fault — sleeping
//                    hides missing synchronization; wait on a CondVar with
//                    a deadline. (fault/ injects stalls by design.)
//   scalar-half-loop float_to_half / half_to_float calls outside src/util —
//                    per-element scalar conversion on the feature pipeline
//                    forfeits the vectorized (F16C/NEON) bulk converters;
//                    use float_to_half_n / half_to_float_n on whole runs.
//
// Matching is token-boundary-aware on comment- and string-scrubbed source,
// so `snprintf(` does not trip `printf(`, `bounded_rand(` does not trip
// `rand(`, and a rule named in a comment is not a finding.
//
// Usage:
//   salient_lint --root <dir> [--allowlist <file>] [--fix-suggestions]
//                [--list-rules]
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
//
// Allowlist file: one `<rule> <path> # reason` per line, where <path> is
// relative to --root with forward slashes. An entry suppresses every finding
// of <rule> in that file; unused entries are reported (stderr) so the list
// cannot rot. Policy in docs/STATIC_ANALYSIS.md: every entry needs a reason.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Pattern {
  std::string text;       // the token sequence to find
  bool call_only = false;  // require '(' (after spaces) following the match
};

struct Rule {
  std::string name;
  std::string summary;
  std::string fix;                    // printed under --fix-suggestions
  std::vector<Pattern> patterns;
  std::vector<std::string> exempt_dirs;  // path prefixes relative to root
};

struct Finding {
  std::string rule;
  std::string file;  // relative to root
  std::size_t line = 0;
  std::string token;
  std::string line_text;
};

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"naked-mutex",
       "raw standard-library synchronization primitive outside src/util",
       "use salient::Mutex / LockGuard / UniqueLock / CondVar from "
       "util/thread_annotations.h so -Wthread-safety can check the lock",
       {{"std::mutex"},
        {"std::recursive_mutex"},
        {"std::timed_mutex"},
        {"std::recursive_timed_mutex"},
        {"std::shared_mutex"},
        {"std::lock_guard"},
        {"std::unique_lock"},
        {"std::scoped_lock"},
        {"std::shared_lock"},
        {"std::condition_variable"},
        {"std::condition_variable_any"}},
       {"util/"}},
      {"nondeterminism",
       "unseeded / wall-clock randomness in a deterministic pipeline",
       "use salient::Xoshiro256ss (util/rng.h) with an explicit seed; derive "
       "per-worker seeds from the run seed",
       {{"rand", true},
        {"srand", true},
        {"random_device"},
        {"time()"},
        {"time(nullptr)"},
        {"time(NULL)"},
        {"time(0)"}},
       {}},
      {"stdout-logging",
       "direct console output from library code",
       "report through obs/ (metrics, trace) or return the error to the "
       "caller; console output belongs to tools/ and examples/",
       {{"std::cout"},
        {"std::cerr"},
        {"printf", true},
        {"fprintf", true},
        {"puts", true},
        {"putchar", true}},
       {}},
      {"sleep",
       "thread sleep outside the fault-injection subsystem",
       "wait on a salient::CondVar with a deadline (wait_until) — a sleep "
       "that makes code correct is a missing synchronization",
       {{"sleep_for", true}, {"sleep_until", true}, {"usleep", true}},
       {"fault/"}},
      {"scalar-half-loop",
       "scalar f16 conversion call outside src/util",
       "convert whole runs with float_to_half_n / half_to_float_n "
       "(util/half.h): the bulk converters vectorize (F16C/NEON) with exact "
       "round-to-nearest-even parity, and a per-element scalar call on a "
       "feature-pipeline path forfeits that bandwidth",
       {{"float_to_half", true}, {"half_to_float", true}},
       {"util/"}},
  };
  return kRules;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Replace comments, string literals (incl. raw strings), and char literals
/// with spaces, preserving byte offsets and newlines.
std::string scrub(const std::string& src) {
  std::string out = src;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // the )delim" terminator of the active raw string
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || !ident_char(src[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          while (p < src.size() && src[p] != '(') ++p;
          raw_delim = ")" + src.substr(i + 2, p - (i + 2)) + "\"";
          for (std::size_t k = i; k <= p && k < src.size(); ++k) {
            if (out[k] != '\n') out[k] = ' ';
          }
          i = p;
          st = St::kRaw;
        } else if (c == '"') {
          st = St::kStr;
          out[i] = ' ';
        } else if (c == '\'') {
          st = St::kChar;
          out[i] = ' ';
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\0' && n != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\0' && n != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

/// True when `text[pos .. pos+pat)` is a token-boundary match of `pat`.
/// A preceding `::` is deliberately a match (std::this_thread::sleep_for
/// must trip the sleep rule); a preceding identifier char is not
/// (snprintf must not trip printf, bounded_rand must not trip rand).
bool bounded_match(const std::string& text, std::size_t pos,
                   const Pattern& pat) {
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  std::size_t end = pos + pat.text.size();
  if (!pat.text.empty() && ident_char(pat.text.back())) {
    if (end < text.size() && ident_char(text[end])) return false;
  }
  if (pat.call_only) {
    while (end < text.size() &&
           (text[end] == ' ' || text[end] == '\t' || text[end] == '\n')) {
      ++end;
    }
    if (end >= text.size() || text[end] != '(') return false;
  }
  return true;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

std::string line_text_at(const std::string& text, std::size_t pos) {
  std::size_t b = text.rfind('\n', pos);
  b = (b == std::string::npos) ? 0 : b + 1;
  std::size_t e = text.find('\n', pos);
  if (e == std::string::npos) e = text.size();
  std::string s = text.substr(b, e - b);
  const std::size_t first = s.find_first_not_of(" \t");
  return first == std::string::npos ? std::string() : s.substr(first);
}

bool path_exempt(const std::string& rel, const Rule& rule) {
  for (const auto& dir : rule.exempt_dirs) {
    if (rel.rfind(dir, 0) == 0) return true;
    if (rel.find("/" + dir) != std::string::npos) return true;
  }
  return false;
}

void lint_file(const std::string& rel, const std::string& raw,
               std::vector<Finding>& findings) {
  const std::string code = scrub(raw);
  for (const Rule& rule : rules()) {
    if (path_exempt(rel, rule)) continue;
    for (const Pattern& pat : rule.patterns) {
      std::size_t pos = 0;
      while ((pos = code.find(pat.text, pos)) != std::string::npos) {
        if (bounded_match(code, pos, pat)) {
          findings.push_back({rule.name, rel, line_of(code, pos), pat.text,
                              line_text_at(raw, pos)});
        }
        pos += pat.text.size();
      }
    }
  }
}

struct Allow {
  std::string rule;
  std::string path;
  bool used = false;
};

// Parses `<rule> <path> [# reason]` lines; returns false on malformed input.
bool load_allowlist(const std::string& file, std::vector<Allow>& out) {
  std::ifstream in(file);
  if (!in) return false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    Allow a;
    if (!(ss >> a.rule)) continue;  // blank / comment-only line
    if (!(ss >> a.path)) {
      std::cerr << "salient_lint: " << file << ":" << lineno
                << ": expected '<rule> <path> # reason'\n";
      return false;
    }
    const auto& rs = rules();
    const bool known =
        std::any_of(rs.begin(), rs.end(),
                    [&](const Rule& r) { return r.name == a.rule; });
    if (!known) {
      std::cerr << "salient_lint: " << file << ":" << lineno
                << ": unknown rule '" << a.rule << "'\n";
      return false;
    }
    out.push_back(a);
  }
  return true;
}

void list_rules() {
  for (const Rule& r : rules()) {
    std::cout << r.name << ": " << r.summary << "\n";
    if (!r.exempt_dirs.empty()) {
      std::cout << "  exempt:";
      for (const auto& d : r.exempt_dirs) std::cout << " " << d;
      std::cout << "\n";
    }
    std::cout << "  fix: " << r.fix << "\n";
  }
}

const Rule* rule_by_name(const std::string& name) {
  for (const Rule& r : rules()) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

int usage() {
  std::cerr << "usage: salient_lint --root <dir> [--allowlist <file>]\n"
               "                    [--fix-suggestions] [--list-rules]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string allowlist_file;
  bool fix_suggestions = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_file = argv[++i];
    } else if (arg == "--fix-suggestions") {
      fix_suggestions = true;
    } else if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else {
      return usage();
    }
  }
  if (root.empty()) return usage();

  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::cerr << "salient_lint: not a directory: " << root << "\n";
    return 2;
  }

  std::vector<Allow> allows;
  if (!allowlist_file.empty() && !load_allowlist(allowlist_file, allows)) {
    return 2;
  }

  // Deterministic order: collect, then sort by relative path.
  std::vector<std::string> files;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc") {
      files.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& rel : files) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      std::cerr << "salient_lint: cannot read " << rel << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    lint_file(rel, ss.str(), findings);
  }

  // Apply the allowlist (every entry suppresses one rule in one file).
  std::vector<Finding> reported;
  for (const auto& f : findings) {
    bool suppressed = false;
    for (auto& a : allows) {
      if (a.rule == f.rule && a.path == f.file) {
        a.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) reported.push_back(f);
  }
  for (const auto& a : allows) {
    if (!a.used) {
      std::cerr << "salient_lint: warning: unused allowlist entry: " << a.rule
                << " " << a.path << "\n";
    }
  }

  for (const auto& f : reported) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] `" << f.token
              << "`: " << f.line_text << "\n";
    if (fix_suggestions) {
      const Rule* r = rule_by_name(f.rule);
      if (r != nullptr) std::cout << "  fix: " << r->fix << "\n";
    }
  }
  if (!reported.empty()) {
    std::cout << reported.size() << " finding"
              << (reported.size() == 1 ? "" : "s") << " in " << files.size()
              << " files\n";
    return 1;
  }
  std::cout << "clean: " << files.size() << " files\n";
  return 0;
}
