// salient_lint: token-level concurrency/determinism linter for src/.
//
// The clang thread-safety analysis (see docs/STATIC_ANALYSIS.md) proves
// locking contracts, but only for code that uses the annotated primitives in
// util/thread_annotations.h — a naked std::mutex is invisible to it. This
// linter closes that hole, plus a few repo-specific discipline rules that
// need no semantic analysis, so they run everywhere (any compiler, any
// platform, < 100 ms) as the ctest `salient_lint_check`:
//
//   naked-mutex      std::mutex / std::lock_guard / std::unique_lock /
//                    std::condition_variable & friends outside src/util —
//                    use salient::Mutex/LockGuard/UniqueLock/CondVar so the
//                    capability analysis can see the lock.
//   nondeterminism   rand() / srand() / std::random_device / time(nullptr)
//                    seeds — the repro pipeline must be deterministic
//                    (paper §5.3 exact-result requirement); use
//                    salient::Xoshiro256ss with an explicit seed.
//   stdout-logging   std::cout / std::cerr / printf / fprintf / puts in
//                    library code — report through obs/ metrics or return
//                    errors; stdout belongs to tools and examples.
//   sleep            sleep_for / sleep_until outside src/fault — sleeping
//                    hides missing synchronization; wait on a CondVar with
//                    a deadline. (fault/ injects stalls by design.)
//   scalar-half-loop float_to_half / half_to_float calls outside src/util —
//                    per-element scalar conversion on the feature pipeline
//                    forfeits the vectorized (F16C/NEON) bulk converters;
//                    use float_to_half_n / half_to_float_n on whole runs.
//
// Matching is token-boundary-aware on comment- and string-scrubbed source,
// so `snprintf(` does not trip `printf(`, `bounded_rand(` does not trip
// `rand(`, and a rule named in a comment is not a finding.
//
// Usage:
//   salient_lint --root <dir> [--allowlist <file>] [--fix-suggestions]
//                [--list-rules]
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
//
// Allowlist file: one `<rule> <path> # reason` per line, where <path> is
// relative to --root with forward slashes. An entry suppresses every finding
// of <rule> in that file; unused entries are reported (stderr) so the list
// cannot rot. Policy in docs/STATIC_ANALYSIS.md: every entry needs a reason.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Pattern {
  std::string text;       // the token sequence to find
  bool call_only = false;  // require '(' (after spaces) following the match
};

struct Finding {
  std::string rule;
  std::string file;  // relative to root
  std::size_t line = 0;
  std::string token;
  std::string line_text;
};

struct Rule;

/// Rules beyond pattern matching implement one of these: `raw` is the file
/// as read, `code` the comment/string-scrubbed version (same offsets).
using CustomCheck = void (*)(const std::string& rel, const std::string& raw,
                             const std::string& code, const Rule& rule,
                             std::vector<Finding>& findings);

struct Rule {
  std::string name;
  std::string summary;
  std::string fix;                    // printed under --fix-suggestions
  std::vector<Pattern> patterns;
  std::vector<std::string> exempt_dirs;  // path prefixes relative to root
  CustomCheck custom = nullptr;          // runs instead of pattern matching
};

void check_memory_order(const std::string& rel, const std::string& raw,
                        const std::string& code, const Rule& rule,
                        std::vector<Finding>& findings);
void check_guarded_by(const std::string& rel, const std::string& raw,
                      const std::string& code, const Rule& rule,
                      std::vector<Finding>& findings);

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"naked-mutex",
       "raw standard-library synchronization primitive outside src/util",
       "use salient::Mutex / LockGuard / UniqueLock / CondVar from "
       "util/thread_annotations.h so -Wthread-safety can check the lock",
       {{"std::mutex"},
        {"std::recursive_mutex"},
        {"std::timed_mutex"},
        {"std::recursive_timed_mutex"},
        {"std::shared_mutex"},
        {"std::lock_guard"},
        {"std::unique_lock"},
        {"std::scoped_lock"},
        {"std::shared_lock"},
        {"std::condition_variable"},
        {"std::condition_variable_any"}},
       {"util/", "check/"}},
      {"nondeterminism",
       "unseeded / wall-clock randomness in a deterministic pipeline",
       "use salient::Xoshiro256ss (util/rng.h) with an explicit seed; derive "
       "per-worker seeds from the run seed",
       {{"rand", true},
        {"srand", true},
        {"random_device"},
        {"time()"},
        {"time(nullptr)"},
        {"time(NULL)"},
        {"time(0)"}},
       {}},
      {"stdout-logging",
       "direct console output from library code",
       "report through obs/ (metrics, trace) or return the error to the "
       "caller; console output belongs to tools/ and examples/",
       {{"std::cout"},
        {"std::cerr"},
        {"printf", true},
        {"fprintf", true},
        {"puts", true},
        {"putchar", true}},
       {}},
      {"sleep",
       "thread sleep outside the fault-injection subsystem",
       "wait on a salient::CondVar with a deadline (wait_until) — a sleep "
       "that makes code correct is a missing synchronization",
       {{"sleep_for", true}, {"sleep_until", true}, {"usleep", true}},
       {"fault/"}},
      {"scalar-half-loop",
       "scalar f16 conversion call outside src/util",
       "convert whole runs with float_to_half_n / half_to_float_n "
       "(util/half.h): the bulk converters vectorize (F16C/NEON) with exact "
       "round-to-nearest-even parity, and a per-element scalar call on a "
       "feature-pipeline path forfeits that bandwidth",
       {{"float_to_half", true}, {"half_to_float", true}},
       {"util/"}},
      {"explicit-memory-order",
       "atomic operation without an explicit std::memory_order argument",
       "state the ordering deliberately (relaxed / acquire / release / "
       "acq_rel / seq_cst) — a defaulted seq_cst hides whether the cost was "
       "chosen or forgotten; the model checker (docs/STATIC_ANALYSIS.md) "
       "explores SC interleavings either way, so the annotation is the only "
       "record of the intended contract",
       {},
       {"util/", "check/"},
       check_memory_order},
      {"guarded-by-coverage",
       "field of a Mutex-holding class lacks GUARDED_BY or an `unguarded:` "
       "note",
       "annotate the field with GUARDED_BY(mu_); fields deliberately outside "
       "the lock (immutable after construction, self-synchronizing atomics, "
       "published by a protocol the comment explains) get a "
       "`// unguarded: <why>` comment on or above the declaration",
       {},
       {"check/"},
       check_guarded_by},
  };
  return kRules;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Replace comments, string literals (incl. raw strings), and char literals
/// with spaces, preserving byte offsets and newlines.
std::string scrub(const std::string& src) {
  std::string out = src;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // the )delim" terminator of the active raw string
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || !ident_char(src[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          while (p < src.size() && src[p] != '(') ++p;
          raw_delim = ")" + src.substr(i + 2, p - (i + 2)) + "\"";
          for (std::size_t k = i; k <= p && k < src.size(); ++k) {
            if (out[k] != '\n') out[k] = ' ';
          }
          i = p;
          st = St::kRaw;
        } else if (c == '"') {
          st = St::kStr;
          out[i] = ' ';
        } else if (c == '\'') {
          st = St::kChar;
          out[i] = ' ';
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\0' && n != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\0' && n != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

/// True when `text[pos .. pos+pat)` is a token-boundary match of `pat`.
/// A preceding `::` is deliberately a match (std::this_thread::sleep_for
/// must trip the sleep rule); a preceding identifier char is not
/// (snprintf must not trip printf, bounded_rand must not trip rand).
bool bounded_match(const std::string& text, std::size_t pos,
                   const Pattern& pat) {
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  std::size_t end = pos + pat.text.size();
  if (!pat.text.empty() && ident_char(pat.text.back())) {
    if (end < text.size() && ident_char(text[end])) return false;
  }
  if (pat.call_only) {
    while (end < text.size() &&
           (text[end] == ' ' || text[end] == '\t' || text[end] == '\n')) {
      ++end;
    }
    if (end >= text.size() || text[end] != '(') return false;
  }
  return true;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

std::string line_text_at(const std::string& text, std::size_t pos) {
  std::size_t b = text.rfind('\n', pos);
  b = (b == std::string::npos) ? 0 : b + 1;
  std::size_t e = text.find('\n', pos);
  if (e == std::string::npos) e = text.size();
  std::string s = text.substr(b, e - b);
  const std::size_t first = s.find_first_not_of(" \t");
  return first == std::string::npos ? std::string() : s.substr(first);
}

bool path_exempt(const std::string& rel, const Rule& rule) {
  for (const auto& dir : rule.exempt_dirs) {
    if (rel.rfind(dir, 0) == 0) return true;
    if (rel.find("/" + dir) != std::string::npos) return true;
  }
  return false;
}

/// explicit-memory-order: every `.op(args)` / `->op(args)` atomic call must
/// name a std::memory_order inside its argument list. Token-level like the
/// rest of the linter: the receiver's type is unknown, but no non-atomic
/// type in this repository exposes these method names, and a false positive
/// is one allowlist line away.
void check_memory_order(const std::string& rel, const std::string& raw,
                        const std::string& code, const Rule& rule,
                        std::vector<Finding>& findings) {
  static const char* kOps[] = {
      "load",      "store",    "exchange",
      "fetch_add", "fetch_sub", "fetch_or",
      "fetch_and", "fetch_xor", "compare_exchange_weak",
      "compare_exchange_strong"};
  for (const char* op : kOps) {
    const std::string tok = op;
    std::size_t pos = 0;
    while ((pos = code.find(tok, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += tok.size();
      // Member-call boundary: preceded by `.` or `->`, followed by `(`.
      if (start == 0 ||
          !(code[start - 1] == '.' ||
            (code[start - 1] == '>' && start >= 2 && code[start - 2] == '-'))) {
        continue;
      }
      std::size_t open = start + tok.size();
      while (open < code.size() &&
             (code[open] == ' ' || code[open] == '\t' || code[open] == '\n')) {
        ++open;
      }
      if (open >= code.size() || code[open] != '(') continue;
      // Span the argument list (scrubbed text: parens never hide in
      // strings/comments).
      std::size_t close = open;
      int depth = 0;
      for (; close < code.size(); ++close) {
        if (code[close] == '(') ++depth;
        if (code[close] == ')' && --depth == 0) break;
      }
      const std::string args = code.substr(open, close - open + 1);
      if (args.find("memory_order") == std::string::npos) {
        findings.push_back({rule.name, rel, line_of(code, start), tok,
                            line_text_at(raw, start)});
      }
    }
  }
}

/// guarded-by-coverage: inside any brace scope that declares a Mutex member,
/// every other plain data member (trailing-underscore name, no GUARDED_BY /
/// REQUIRES, not itself a synchronization object, not a function/alias/
/// static) needs either the annotation or an `unguarded: <why>` comment on
/// its own or the preceding raw line. Heuristic by design — see
/// docs/STATIC_ANALYSIS.md for the audit policy.
void check_guarded_by(const std::string& rel, const std::string& raw,
                      const std::string& code, const Rule& rule,
                      std::vector<Finding>& findings) {
  const auto has_token = [](const std::string& text, const std::string& tok) {
    std::size_t pos = 0;
    while ((pos = text.find(tok, pos)) != std::string::npos) {
      const bool lb = pos == 0 || !ident_char(text[pos - 1]);
      const std::size_t end = pos + tok.size();
      const bool rb = end >= text.size() || !ident_char(text[end]);
      if (lb && rb) return true;
      pos = end;
    }
    return false;
  };

  struct Chunk {
    std::string text;
    std::size_t end = 0;  // offset of the terminating ';'
  };
  struct Scope {
    std::vector<Chunk> chunks;
    std::string pending;
    std::string saved_parent_pending;
  };
  std::vector<Scope> stack(1);

  const auto evaluate = [&](const Scope& sc) {
    bool holds_mutex = false;
    for (const Chunk& ch : sc.chunks) {
      if (has_token(ch.text, "Mutex") &&
          ch.text.find('(') == std::string::npos &&
          ch.text.find('&') == std::string::npos &&
          ch.text.find('*') == std::string::npos) {
        holds_mutex = true;
        break;
      }
    }
    if (!holds_mutex) return;
    static const char* kSkip[] = {
        "GUARDED_BY", "PT_GUARDED_BY", "REQUIRES", "Mutex",
        "CondVar",    "atomic",        "static",   "constexpr",
        "using",      "typedef",       "friend",   "enum",
        "class",      "struct",        "template", "operator",
        "NO_THREAD_SAFETY_ANALYSIS",   "TS_NO_ANALYSIS"};
    for (const Chunk& ch : sc.chunks) {
      if (ch.text.find('(') != std::string::npos) continue;  // functions
      if (ch.text.find('#') != std::string::npos) continue;  // preprocessor
      bool skip = false;
      for (const char* t : kSkip) {
        if (has_token(ch.text, t)) {
          skip = true;
          break;
        }
      }
      if (skip) continue;
      // Declared name: last identifier before any initializer.
      std::string head = ch.text.substr(0, ch.text.find('='));
      std::string name;
      for (std::size_t i = 0; i < head.size();) {
        if (ident_char(head[i]) &&
            !std::isdigit(static_cast<unsigned char>(head[i]))) {
          std::size_t j = i;
          while (j < head.size() && ident_char(head[j])) ++j;
          name = head.substr(i, j - i);
          i = j;
        } else {
          ++i;
        }
      }
      if (name.empty() || name.back() != '_') continue;  // not a member
      // `unguarded:` note on the declaration's raw line or the line above.
      const std::size_t lineno = line_of(code, ch.end);
      std::size_t line_start = raw.rfind('\n', ch.end);
      line_start = line_start == std::string::npos ? 0 : line_start + 1;
      std::size_t line_end = raw.find('\n', ch.end);
      if (line_end == std::string::npos) line_end = raw.size();
      std::size_t prev_start = line_start >= 2
                                   ? raw.rfind('\n', line_start - 2)
                                   : std::string::npos;
      prev_start = prev_start == std::string::npos && line_start > 0
                       ? 0
                       : (prev_start == std::string::npos ? line_start
                                                          : prev_start + 1);
      const std::string context =
          raw.substr(prev_start, line_end - prev_start);
      if (context.find("unguarded:") != std::string::npos) continue;
      findings.push_back(
          {rule.name, rel, lineno, name, line_text_at(raw, ch.end)});
    }
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '{') {
      Scope sc;
      sc.saved_parent_pending = stack.back().pending;
      stack.back().pending.clear();
      stack.push_back(std::move(sc));
    } else if (c == '}') {
      if (stack.size() > 1) {
        Scope done = std::move(stack.back());
        stack.pop_back();
        evaluate(done);
        // Restore the header so `struct X {...} x_;` still declares x_ and
        // `Foo x_{0};` keeps its name through the brace-init — but an inline
        // function definition (header contains '(') is complete at its '}',
        // and must not bleed into the next member's chunk.
        if (done.saved_parent_pending.find('(') != std::string::npos) {
          stack.back().pending.clear();
        } else {
          stack.back().pending = std::move(done.saved_parent_pending);
        }
      }
    } else if (c == ';') {
      stack.back().chunks.push_back({std::move(stack.back().pending), i});
      stack.back().pending.clear();
    } else {
      stack.back().pending += c;
    }
  }
  evaluate(stack.front());
}

void lint_file(const std::string& rel, const std::string& raw,
               std::vector<Finding>& findings) {
  const std::string code = scrub(raw);
  for (const Rule& rule : rules()) {
    if (path_exempt(rel, rule)) continue;
    if (rule.custom != nullptr) {
      rule.custom(rel, raw, code, rule, findings);
      continue;
    }
    for (const Pattern& pat : rule.patterns) {
      std::size_t pos = 0;
      while ((pos = code.find(pat.text, pos)) != std::string::npos) {
        if (bounded_match(code, pos, pat)) {
          findings.push_back({rule.name, rel, line_of(code, pos), pat.text,
                              line_text_at(raw, pos)});
        }
        pos += pat.text.size();
      }
    }
  }
}

struct Allow {
  std::string rule;
  std::string path;
  bool used = false;
};

// Parses `<rule> <path> [# reason]` lines; returns false on malformed input.
bool load_allowlist(const std::string& file, std::vector<Allow>& out) {
  std::ifstream in(file);
  if (!in) return false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    Allow a;
    if (!(ss >> a.rule)) continue;  // blank / comment-only line
    if (!(ss >> a.path)) {
      std::cerr << "salient_lint: " << file << ":" << lineno
                << ": expected '<rule> <path> # reason'\n";
      return false;
    }
    const auto& rs = rules();
    const bool known =
        std::any_of(rs.begin(), rs.end(),
                    [&](const Rule& r) { return r.name == a.rule; });
    if (!known) {
      std::cerr << "salient_lint: " << file << ":" << lineno
                << ": unknown rule '" << a.rule << "'\n";
      return false;
    }
    out.push_back(a);
  }
  return true;
}

void list_rules() {
  for (const Rule& r : rules()) {
    std::cout << r.name << ": " << r.summary << "\n";
    if (!r.exempt_dirs.empty()) {
      std::cout << "  exempt:";
      for (const auto& d : r.exempt_dirs) std::cout << " " << d;
      std::cout << "\n";
    }
    std::cout << "  fix: " << r.fix << "\n";
  }
}

const Rule* rule_by_name(const std::string& name) {
  for (const Rule& r : rules()) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

int usage() {
  std::cerr << "usage: salient_lint --root <dir> [--allowlist <file>]\n"
               "                    [--fix-suggestions] [--list-rules]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string allowlist_file;
  bool fix_suggestions = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_file = argv[++i];
    } else if (arg == "--fix-suggestions") {
      fix_suggestions = true;
    } else if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else {
      return usage();
    }
  }
  if (root.empty()) return usage();

  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::cerr << "salient_lint: not a directory: " << root << "\n";
    return 2;
  }

  std::vector<Allow> allows;
  if (!allowlist_file.empty() && !load_allowlist(allowlist_file, allows)) {
    return 2;
  }

  // Deterministic order: collect, then sort by relative path.
  std::vector<std::string> files;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc") {
      files.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& rel : files) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      std::cerr << "salient_lint: cannot read " << rel << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    lint_file(rel, ss.str(), findings);
  }

  // Apply the allowlist (every entry suppresses one rule in one file).
  std::vector<Finding> reported;
  for (const auto& f : findings) {
    bool suppressed = false;
    for (auto& a : allows) {
      if (a.rule == f.rule && a.path == f.file) {
        a.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) reported.push_back(f);
  }
  for (const auto& a : allows) {
    if (!a.used) {
      std::cerr << "salient_lint: warning: unused allowlist entry: " << a.rule
                << " " << a.path << "\n";
    }
  }

  for (const auto& f : reported) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] `" << f.token
              << "`: " << f.line_text << "\n";
    if (fix_suggestions) {
      const Rule* r = rule_by_name(f.rule);
      if (r != nullptr) std::cout << "  fix: " << r->fix << "\n";
    }
  }
  if (!reported.empty()) {
    std::cout << reported.size() << " finding"
              << (reported.size() == 1 ? "" : "s") << " in " << files.size()
              << " files\n";
    return 1;
  }
  std::cout << "clean: " << files.size() << " files\n";
  return 0;
}
