// Load generator for the online inference server (docs/SERVING.md).
//
// Drives an InferenceServer in either of the two classic harness shapes:
//   * open loop  (--qps=N): requests arrive on a fixed-rate schedule
//     regardless of completions — models independent clients and exposes
//     queueing collapse at saturation (offered load is honest);
//   * closed loop (--qps=0 --concurrency=N): N workers issue back-to-back
//     requests — models a fixed client pool and measures peak throughput.
//
// One run prints a single result line; --sweep=q1,q2,... runs a fresh server
// per offered rate and prints the latency-vs-offered-throughput curve
// (docs/EXPERIMENTS.md). --check turns the run into a pass/fail gate for
// ctest: below the shed threshold the server must complete every admitted
// request with zero shed and non-degenerate p50<=p95<=p99.
//
//   ./serve_loadgen [flags]
//     --qps=<double>          open-loop offered rate (0 = closed loop)
//     --concurrency=<n>       closed-loop client count        [4]
//     --requests=<n>          total requests per run          [2000]
//     --nodes-per-request=<n> nodes predicted per request     [1]
//     --fanouts=a,b,...       per-layer inference fanouts     [10,10]
//     --max-batch=<nodes>     micro-batch size bound          [256]
//     --max-wait-us=<us>      micro-batch wait bound          [2000]
//     --queue-cap=<n>         admission queue capacity        [256]
//     --workers=<n>           prep workers                    [2]
//     --cache-mb=<mb>         device feature cache size       [0 = off]
//     --cache-pct=<frac>      feature cache capacity, fraction of |V| [0 = off]
//     --cache-policy=<name>   lru|degree|presample|auto       [degree]
//     --result-cache=<n>      result cache entries            [0 = off]
//     --slo-ms=<ms>           latency SLO                     [50]
//     --dataset=<preset>      arxiv-sim|products-sim|papers-sim [arxiv-sim]
//     --scale=<x>             dataset scale                   [0.05]
//     --skew=<zipf-s>         request popularity skew         [0 = uniform]
//     --sweep=q1,q2,...       latency-vs-throughput curve (open loop)
//     --sweep-cache=p1,p2,... cache-percentage sweep: one closed-loop run per
//                             (policy in {lru,degree,presample}) x fraction;
//                             prints machine-readable `cache-sweep ...` lines
//                             (hit rate, latency percentiles, throughput)
//     --check                 exit nonzero unless the run is clean
//     --check-cache           with --sweep-cache: exit nonzero unless the
//                             frequency-informed static policies (degree,
//                             presample) beat lru on hit rate at every point
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "graph/dataset.h"
#include "nn/models.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace {

using namespace salient;
using namespace salient::serve;
using Clock = std::chrono::steady_clock;

struct LoadgenOptions {
  double qps = 0;  // 0 => closed loop
  int concurrency = 4;
  int requests = 2000;
  int nodes_per_request = 1;
  std::vector<std::int64_t> fanouts{10, 10};
  std::int64_t max_batch = 256;
  std::int64_t max_wait_us = 2000;
  std::size_t queue_cap = 256;
  int workers = 2;
  double cache_mb = 0;
  double cache_pct = 0;
  std::string cache_policy = "degree";
  std::int64_t result_cache = 0;
  double slo_ms = 50;
  std::string dataset = "arxiv-sim";
  double scale = 0.05;
  double skew = 0;
  std::vector<double> sweep;
  std::vector<double> sweep_cache;
  bool check = false;
  bool check_cache = false;
};

std::vector<double> parse_doubles(const std::string& text) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    out.push_back(std::atof(text.substr(pos, end - pos).c_str()));
    pos = end + 1;
  }
  return out;
}

bool consume(const std::string& arg, const std::string& key,
             std::string& value) {
  const std::string prefix = "--" + key + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  value = arg.substr(prefix.size());
  return true;
}

LoadgenOptions parse_options(int argc, char** argv) {
  LoadgenOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (consume(arg, "qps", v)) o.qps = std::atof(v.c_str());
    else if (consume(arg, "concurrency", v)) o.concurrency = std::atoi(v.c_str());
    else if (consume(arg, "requests", v)) o.requests = std::atoi(v.c_str());
    else if (consume(arg, "nodes-per-request", v)) o.nodes_per_request = std::atoi(v.c_str());
    else if (consume(arg, "fanouts", v)) o.fanouts = parse_fanouts(v);
    else if (consume(arg, "max-batch", v)) o.max_batch = std::atoll(v.c_str());
    else if (consume(arg, "max-wait-us", v)) o.max_wait_us = std::atoll(v.c_str());
    else if (consume(arg, "queue-cap", v)) o.queue_cap = static_cast<std::size_t>(std::atoll(v.c_str()));
    else if (consume(arg, "workers", v)) o.workers = std::atoi(v.c_str());
    else if (consume(arg, "cache-mb", v)) o.cache_mb = std::atof(v.c_str());
    else if (consume(arg, "cache-pct", v)) o.cache_pct = std::atof(v.c_str());
    else if (consume(arg, "cache-policy", v)) o.cache_policy = v;
    else if (consume(arg, "result-cache", v)) o.result_cache = std::atoll(v.c_str());
    else if (consume(arg, "slo-ms", v)) o.slo_ms = std::atof(v.c_str());
    else if (consume(arg, "dataset", v)) o.dataset = v;
    else if (consume(arg, "scale", v)) o.scale = std::atof(v.c_str());
    else if (consume(arg, "skew", v)) o.skew = std::atof(v.c_str());
    else if (consume(arg, "sweep", v)) {
      for (const auto f : parse_fanouts(v)) o.sweep.push_back(static_cast<double>(f));
    } else if (consume(arg, "sweep-cache", v)) {
      o.sweep_cache = parse_doubles(v);
    } else if (arg == "--check") {
      o.check = true;
    } else if (arg == "--check-cache") {
      o.check_cache = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
  }
  return o;
}

/// Pre-draw each request's target nodes. Zipf-ish skew concentrates traffic
/// on low-index test nodes (what makes the result cache earn its keep).
std::vector<std::vector<NodeId>> draw_request_nodes(const Dataset& ds,
                                                    const LoadgenOptions& o) {
  std::mt19937_64 rng(42);
  const auto n = static_cast<double>(ds.test_idx.size());
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<std::vector<NodeId>> out(static_cast<std::size_t>(o.requests));
  for (auto& nodes : out) {
    nodes.reserve(static_cast<std::size_t>(o.nodes_per_request));
    for (int k = 0; k < o.nodes_per_request; ++k) {
      const double u = uni(rng);
      // skew=0 -> uniform; larger skew biases toward index 0 (u^(1+s) decays
      // faster), a cheap stand-in for Zipf popularity.
      const double biased = o.skew > 0 ? std::pow(u, 1.0 + o.skew) : u;
      const auto idx = std::min(ds.test_idx.size() - 1,
                                static_cast<std::size_t>(biased * n));
      nodes.push_back(ds.test_idx[idx]);
    }
  }
  return out;
}

ServeConfig make_serve_config(const Dataset& ds, const LoadgenOptions& o) {
  ServeConfig sc;
  sc.fanouts = o.fanouts;
  sc.queue_capacity = o.queue_cap;
  sc.batch.max_batch_nodes = o.max_batch;
  sc.batch.max_wait = std::chrono::microseconds(o.max_wait_us);
  sc.num_prep_workers = o.workers;
  sc.result_cache_capacity = o.result_cache;
  sc.slo_us = o.slo_ms * 1000.0;
  if (o.cache_mb > 0) {
    const auto nodes = static_cast<std::int64_t>(
        o.cache_mb * 1e6 / (static_cast<double>(ds.feature_dim) * 4.0));
    sc.feature_cache = std::make_shared<const FeatureCache>(
        ds, std::min<std::int64_t>(nodes, ds.graph.num_nodes()));
  } else if (o.cache_pct > 0) {
    // Let the server build its own policy-driven cache (presample warmup
    // seeds from the test split, matching the request population).
    sc.cache_policy = parse_cache_policy(o.cache_policy);
    sc.cache_percentage = o.cache_pct;
  }
  return sc;
}

struct RunResult {
  double offered_qps = 0;   // requested arrival rate (0 = closed loop)
  double achieved_qps = 0;  // completed / wall time
  double wall_s = 0;
  ServeStats stats;
};

RunResult run_once(const Dataset& ds, const std::shared_ptr<nn::GnnModel>& model,
                   const LoadgenOptions& o, double qps) {
  obs::Registry::global().reset();  // fresh histograms per point
  DeviceSim device;
  InferenceServer server(ds, model, device, make_serve_config(ds, o));
  const auto request_nodes = draw_request_nodes(ds, o);

  std::vector<std::future<Response>> futures(request_nodes.size());
  const auto t0 = Clock::now();
  if (qps > 0) {
    // Open loop: fixed-rate arrival schedule, late or not.
    const auto gap = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / qps));
    for (std::size_t i = 0; i < request_nodes.size(); ++i) {
      std::this_thread::sleep_until(t0 + gap * static_cast<std::int64_t>(i));
      futures[i] = server.submit(request_nodes[i]);
    }
  } else {
    // Closed loop: `concurrency` clients, each back-to-back.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> clients;
    const int c = std::max(1, o.concurrency);
    clients.reserve(static_cast<std::size_t>(c));
    for (int w = 0; w < c; ++w) {
      clients.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < request_nodes.size();
             i = next.fetch_add(1)) {
          futures[i] = server.submit(request_nodes[i]);
          futures[i].wait();
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  for (auto& f : futures) f.wait();  // open loop: collect the tail
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  RunResult r;
  r.offered_qps = qps;
  r.wall_s = wall_s;
  r.stats = server.stats();
  r.achieved_qps = wall_s > 0 ? static_cast<double>(r.stats.completed) / wall_s
                              : 0;
  return r;
}

void print_result(const RunResult& r) {
  std::cout << std::fixed << std::setprecision(2);
  if (r.offered_qps > 0) {
    std::cout << "offered=" << r.offered_qps << "qps ";
  } else {
    std::cout << "closed-loop ";
  }
  std::cout << "achieved=" << r.achieved_qps << "qps wall=" << r.wall_s
            << "s " << r.stats.summary() << "\n";
}

/// --check: the clean-run contract the ctest registration enforces.
int check_result(const RunResult& r, int requests) {
  const ServeStats& s = r.stats;
  int failures = 0;
  auto expect = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "CHECK FAILED: " << what << "\n";
      ++failures;
    }
  };
  expect(s.shed == 0, "zero requests shed below the admission bound");
  expect(s.admitted == requests, "every request admitted");
  expect(s.completed == requests, "every admitted request completed");
  expect(s.p50_us > 0, "p50 > 0");
  expect(s.p50_us <= s.p95_us, "p50 <= p95");
  expect(s.p95_us <= s.p99_us, "p95 <= p99");
  expect(s.batches > 0, "at least one micro-batch");
  return failures == 0 ? 0 : 1;
}

/// --sweep-cache: one closed-loop run per (policy, capacity fraction),
/// printing one machine-readable `cache-sweep ...` line each — the hit-rate
/// and latency curves of docs/CACHING.md and EXPERIMENTS.md. With
/// --check-cache it doubles as the ctest gate for the claim behind the
/// policy engine: on a skewed request stream over a power-law graph, static
/// frequency-informed placement (degree, presample) beats dynamic LRU.
int run_cache_sweep(const Dataset& ds,
                    const std::shared_ptr<nn::GnnModel>& model,
                    const LoadgenOptions& o) {
  static const char* kPolicies[] = {"lru", "degree", "presample"};
  int failures = 0;
  auto expect = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "CACHE CHECK FAILED: " << what << "\n";
      ++failures;
    }
  };
  std::cout << "cache-percentage sweep (closed loop):\n";
  for (const double pct : o.sweep_cache) {
    double hit_rate[3] = {0, 0, 0};
    for (int p = 0; p < 3; ++p) {
      LoadgenOptions oc = o;
      oc.cache_mb = 0;
      oc.cache_pct = pct;
      oc.cache_policy = kPolicies[p];
      const RunResult r = run_once(ds, model, oc, /*qps=*/0.0);
      hit_rate[p] = r.stats.feature_cache_hit_rate;
      std::cout << std::fixed << std::setprecision(4)
                << "cache-sweep policy=" << kPolicies[p] << " pct=" << pct
                << " hit_rate=" << r.stats.feature_cache_hit_rate
                << std::setprecision(1) << " p50_us=" << r.stats.p50_us
                << " p95_us=" << r.stats.p95_us
                << " p99_us=" << r.stats.p99_us << std::setprecision(2)
                << " achieved_qps=" << r.achieved_qps
                << " wall_s=" << r.wall_s << "\n";
      if (o.check_cache) {
        expect(r.stats.completed == o.requests,
               std::string(kPolicies[p]) + ": every request completed");
      }
    }
    if (o.check_cache) {
      // Static frequency-informed placement must beat LRU by a real margin
      // (not a tie): the power-law access stream is near-stationary, so
      // recency learns nothing frequency doesn't already know while paying
      // eviction churn on every batch.
      const double margin = 0.02;
      const auto tag = [&](const char* name) {
        std::ostringstream os;
        os << name << " beats lru at pct=" << pct << " (lru=" << hit_rate[0]
           << ")";
        return os.str();
      };
      expect(hit_rate[1] >= hit_rate[0] + margin, tag("degree"));
      expect(hit_rate[2] >= hit_rate[0] + margin, tag("presample"));
      expect(hit_rate[2] > 0, "presample achieves a nonzero hit rate");
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const LoadgenOptions o = parse_options(argc, argv);

  DatasetConfig dc = preset_config(o.dataset, o.scale);
  const Dataset ds = generate_dataset(dc);
  nn::ModelConfig mc;
  mc.in_channels = ds.feature_dim;
  mc.hidden_channels = 32;
  mc.out_channels = ds.num_classes;
  mc.num_layers = static_cast<int>(o.fanouts.size());
  auto model = nn::make_model("sage", mc);  // weights don't matter for load

  std::cout << "serve_loadgen: " << ds.name << " (" << ds.graph.num_nodes()
            << " nodes), " << o.requests << " requests x "
            << o.nodes_per_request << " node(s), fanouts (";
  for (std::size_t i = 0; i < o.fanouts.size(); ++i) {
    std::cout << (i ? "," : "") << o.fanouts[i];
  }
  std::cout << ")\n";

  if (!o.sweep_cache.empty()) {
    return run_cache_sweep(ds, model, o);
  }
  if (!o.sweep.empty()) {
    std::cout << "latency vs offered throughput:\n";
    for (const double qps : o.sweep) {
      print_result(run_once(ds, model, o, qps));
    }
    return 0;
  }
  const RunResult r = run_once(ds, model, o, o.qps);
  print_result(r);
  return o.check ? check_result(r, o.requests) : 0;
}
