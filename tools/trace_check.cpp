// trace_check — validate a Chrome trace_event JSON file.
//
// Usage: trace_check <trace.json> [--min-tracks N]
//
// Checks, in order:
//   1. the file parses as JSON (obs/json_lite.h);
//   2. the top-level value is an object with a "traceEvents" array;
//   3. every event carries the required keys `ph`, `ts`, `pid`, `tid`,
//      `name` with sane types;
//   4. complete ('X') events span at least --min-tracks (default 3)
//      distinct (pid, tid) tracks — for a quickstart run that means the
//      preparation workers, the copy/compute streams, and the main thread
//      all show up, i.e. the Figure 1 pipeline overlap is visible.
//
// Exit code 0 on success; 1 with a diagnostic on the first violation. Used
// by the `quickstart_trace_validate` ctest case.
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json_lite.h"

namespace json = salient::obs::json;

namespace {

int fail(const std::string& msg) {
  std::cerr << "trace_check: " << msg << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t min_tracks = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-tracks") == 0 && i + 1 < argc) {
      min_tracks = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    return fail("usage: trace_check <trace.json> [--min-tracks N]");
  }

  std::ifstream is(path);
  if (!is) return fail("cannot open " + path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) return fail(path + " is empty");

  json::Value doc;
  std::string error;
  if (!json::parse(text, doc, error)) {
    return fail(path + " is not valid JSON: " + error);
  }
  if (!doc.is_object()) return fail("top-level value is not an object");
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("missing \"traceEvents\" array");
  }
  if (events->array.empty()) return fail("\"traceEvents\" is empty");

  std::set<std::pair<double, double>> span_tracks;
  std::set<std::string> thread_names;
  std::size_t spans = 0;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const json::Value& e = events->array[i];
    if (!e.is_object()) {
      return fail("traceEvents[" + std::to_string(i) + "] is not an object");
    }
    for (const char* key : {"ph", "ts", "pid", "tid", "name"}) {
      if (e.find(key) == nullptr) {
        return fail("traceEvents[" + std::to_string(i) + "] lacks key \"" +
                    key + "\"");
      }
    }
    const json::Value& ph = *e.find("ph");
    const json::Value& name = *e.find("name");
    if (!ph.is_string() || ph.string.empty()) {
      return fail("traceEvents[" + std::to_string(i) + "].ph is not a string");
    }
    if (!e.find("ts")->is_number() || !e.find("pid")->is_number() ||
        !e.find("tid")->is_number()) {
      return fail("traceEvents[" + std::to_string(i) +
                  "]: ts/pid/tid must be numbers");
    }
    if (ph.string == "X") {
      ++spans;
      span_tracks.insert(
          {e.find("pid")->number, e.find("tid")->number});
      const json::Value* dur = e.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number < 0) {
        return fail("traceEvents[" + std::to_string(i) +
                    "]: 'X' event lacks a non-negative dur");
      }
    }
    if (ph.string == "M" && name.is_string() &&
        name.string == "thread_name") {
      const json::Value* args = e.find("args");
      const json::Value* n = args ? args->find("name") : nullptr;
      if (n != nullptr && n->is_string()) thread_names.insert(n->string);
    }
  }

  if (spans == 0) return fail("no complete ('X') span events");
  if (span_tracks.size() < min_tracks) {
    return fail("spans cover only " + std::to_string(span_tracks.size()) +
                " track(s); expected >= " + std::to_string(min_tracks));
  }

  std::cout << "trace_check: OK — " << events->array.size() << " events, "
            << spans << " spans on " << span_tracks.size() << " tracks";
  if (!thread_names.empty()) {
    std::cout << " (";
    bool first = true;
    for (const auto& n : thread_names) {
      if (!first) std::cout << ", ";
      first = false;
      std::cout << n;
    }
    std::cout << ")";
  }
  std::cout << "\n";
  return 0;
}
